"""Tests for the dialect layer (:mod:`repro.dialects`).

A dialect is a registered whole-module rewrite that runs on reader
output — after the ``#lang`` line is parsed, before module scopes are
added and before any macro expansion. Covers: ``#lang`` spec resolution
(implicit language dialects, explicit ``+``-stacking, dedup, D001),
dialect identity in the artifact-cache key, ``dialect.*`` spans on the
observe bus, D-coded diagnostics with pre-rewrite srclocs, warm starts
that skip the rewrite entirely, budget governance, user-registered
dialects, and transparency under ``compile_graph`` and the import hook.
"""

from __future__ import annotations

import importlib
import sys

import pytest

from repro import Runtime
from repro.dialects import Dialect, apply_dialects
from repro.errors import BudgetExhausted, DialectError
from repro.importer import install, uninstall
from repro.reader.reader import read_string_all
from repro.runtime.values import Symbol
from repro.syn.syntax import Syntax

INFIX_MOD = """#lang racket/infix
(define-op ^ 8 right expt)
(define x {1 + 2 * 3})
(displayln {x ^ 2})
"""


class TestSpecResolution:
    def test_plain_language_has_no_dialects(self):
        with Runtime(cache=False) as rt:
            lang, dialects = rt.registry.resolve_lang_spec("racket")
            assert lang.name == "racket"
            assert dialects == ()

    def test_language_with_implicit_dialect(self):
        with Runtime(cache=False) as rt:
            lang, dialects = rt.registry.resolve_lang_spec("racket/infix")
            assert lang.name == "racket/infix"
            assert [d.name for d in dialects] == ["infix"]

    def test_explicit_stacking(self):
        with Runtime(cache=False) as rt:
            lang, dialects = rt.registry.resolve_lang_spec("racket+infix")
            assert lang.name == "racket"
            assert [d.name for d in dialects] == ["infix"]

    def test_stacking_on_other_languages(self):
        with Runtime(cache=False) as rt:
            lang, dialects = rt.registry.resolve_lang_spec("typed+infix")
            assert lang.name == "typed"
            assert [d.name for d in dialects] == ["infix"]

    def test_duplicate_dialects_are_deduped(self):
        with Runtime(cache=False) as rt:
            # racket/infix already carries the infix dialect implicitly
            _, dialects = rt.registry.resolve_lang_spec("racket/infix+infix")
            assert [d.name for d in dialects] == ["infix"]

    def test_unknown_dialect_is_d001(self):
        with Runtime(cache=False) as rt:
            with pytest.raises(DialectError) as exc_info:
                rt.registry.resolve_lang_spec("racket+mystery")
            assert exc_info.value.code == "D001"

    def test_malformed_spec_is_d001(self):
        with Runtime(cache=False) as rt:
            with pytest.raises(DialectError) as exc_info:
                rt.registry.resolve_lang_spec("racket++infix")
            assert exc_info.value.code == "D001"

    def test_exact_language_name_wins_over_splitting(self):
        """A registered language whose *name* contains `+` resolves as
        itself — splitting only applies to unregistered specs."""
        from repro.modules.registry import Language

        with Runtime(cache=False) as rt:
            racket = rt.registry.language("racket")
            weird = Language("a+b")
            weird.inherit(racket)
            rt.registry.register_language(weird)
            lang, dialects = rt.registry.resolve_lang_spec("a+b")
            assert lang.name == "a+b" and dialects == ()


class TestStackedCompilation:
    def test_plus_spec_compiles_end_to_end(self):
        src = "#lang racket+infix\n(displayln {6 * 7})\n"
        with Runtime(cache=False) as rt:
            assert rt.run_source(src, "<stacked>") == "42\n"

    def test_stack_on_typed_language(self):
        src = (
            "#lang typed+infix\n"
            "(: x Integer)\n"
            "(define x {40 + 2})\n"
            "(displayln x)\n"
        )
        with Runtime(cache=False) as rt:
            assert rt.run_source(src, "<typed-stacked>") == "42\n"


class TestCacheIdentity:
    def test_dialect_module_warm_starts_with_zero_expansions(self, tmp_path):
        cache = str(tmp_path / "cache")
        with Runtime(cache_dir=cache) as rt:
            rt.register_module("m", INFIX_MOD)
            assert rt.run("m") == "49\n"
            assert rt.stats.expansion_steps > 0
        with Runtime(cache_dir=cache) as rt2:
            rt2.register_module("m", INFIX_MOD)
            # warm: the artifact replays — no reread, no dialect rewrite,
            # no expansion, no codegen
            assert rt2.run("m") == "49\n"
            assert rt2.stats.expansion_steps == 0
            assert rt2.stats.cache_hits >= 1
            assert rt2.stats.cache_misses == 0

    def test_cache_key_carries_dialect_tags(self):
        with Runtime(cache=False) as rt:
            reg = rt.registry
            assert reg.cache_lang_key("racket") == "racket"
            assert reg.cache_lang_key("racket/infix") == "racket/infix[infix@1]"
            assert (
                reg.cache_lang_key("typed+infix+match-ext")
                == "typed+infix+match-ext[infix@1,match-ext@1]"
            )

    def test_dialect_version_bump_changes_cache_key(self):
        with Runtime(cache=False) as rt:
            reg = rt.registry
            old = reg.cache_lang_key("racket+infix")

            class InfixV2(type(reg.dialect("infix"))):
                version = "2"

            reg.register_dialect(InfixV2())
            assert reg.cache_lang_key("racket+infix") != old


class TestObservability:
    def test_dialect_span_on_the_bus(self):
        with Runtime(trace=True, cache=False) as rt:
            rt.run_source(INFIX_MOD, "<traced>")
            spans = [e for e in rt.tracer.events if e.category == "dialect"]
            assert spans, "the dialect rewrite must be a span on the bus"
            assert any("infix" in e.name for e in spans)
            assert any(e.attrs.get("version") == "1" for e in spans)


class TestDiagnostics:
    def test_bad_define_op_is_d003_with_pre_rewrite_srcloc(self):
        src = "#lang racket/infix\n(define-op bad)\n"
        with Runtime(cache=False) as rt:
            with pytest.raises(DialectError) as exc_info:
                rt.run_source(src, "<bad-op>")
            err = exc_info.value
            assert err.code == "D003"
            # the srcloc points at the original source, line 2
            assert err.srcloc is not None and err.srcloc.line == 2

    def test_malformed_infix_is_d004(self):
        src = "#lang racket/infix\n(displayln {1 +})\n"
        with Runtime(cache=False) as rt:
            with pytest.raises(DialectError) as exc_info:
                rt.run_source(src, "<bad-infix>")
            assert exc_info.value.code == "D004"

    def test_crashing_dialect_is_wrapped_as_d002(self):
        class Exploding(Dialect):
            name = "exploding"
            version = "1"

            def rewrite(self, forms, path, session):
                raise ZeroDivisionError("boom")

        forms = read_string_all("(x)", "<d002>")
        with pytest.raises(DialectError) as exc_info:
            apply_dialects([Exploding()], forms, "<d002>", session=None)
        assert exc_info.value.code == "D002"
        assert "boom" in str(exc_info.value)


class TestUserDialects:
    def test_registered_dialect_composes_via_plus(self):
        class Doubler(Dialect):
            """Rewrites (answer) forms to (displayln 42)."""

            name = "answered"
            version = "1"

            def rewrite(self, forms, path, session):
                out = []
                for form in forms:
                    if (
                        isinstance(form.e, tuple)
                        and len(form.e) == 1
                        and form.e[0].is_identifier()
                        and form.e[0].e.name == "answer"
                    ):
                        head = Syntax(Symbol("displayln"), form.scopes,
                                      form.srcloc)
                        body = Syntax(42, form.scopes, form.srcloc)
                        form = Syntax((head, body), form.scopes, form.srcloc)
                    out.append(form)
                return out

        with Runtime(cache=False) as rt:
            rt.registry.register_dialect(Doubler())
            out = rt.run_source("#lang racket+answered\n(answer)\n", "<user>")
            assert out == "42\n"


class TestGovernance:
    def test_dialect_module_is_budget_killable(self):
        busy = (
            "#lang racket/infix\n"
            "(define (loop n acc) (if {n = 0} acc (loop {n - 1} {acc + n})))\n"
            "(displayln (loop 100000 0))\n"
        )
        with Runtime(budget={"steps": 50}, cache=False) as rt:
            with pytest.raises(BudgetExhausted) as exc_info:
                rt.run_source(busy, "<busy>")
            assert exc_info.value.code == "G001"


class TestLangsCLI:
    def test_text_listing(self, capsys):
        from repro.tools.runner import main

        assert main(["langs"]) == 0
        out = capsys.readouterr().out
        assert "languages:" in out and "dialects:" in out
        assert "racket/infix" in out and "racket/match-ext" in out
        assert "infix  version 1" in out

    def test_json_listing(self, capsys):
        import json

        from repro.tools.runner import main

        assert main(["langs", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-langs/1"
        by_name = {l["name"]: l for l in payload["languages"]}
        assert by_name["racket/infix"]["dialects"] == ["infix"]
        assert by_name["racket/match-ext"]["dialects"] == ["match-ext"]
        assert by_name["racket"]["dialects"] == []
        dialect_names = {d["name"] for d in payload["dialects"]}
        assert {"infix", "match-ext"} <= dialect_names
        # each registered spec appears exactly once
        names = [l["name"] for l in payload["languages"]]
        assert len(names) == len(set(names))

    def test_unknown_option_is_usage_error(self, capsys):
        from repro.tools.runner import main

        assert main(["langs", "--bogus"]) == 2


class TestTransparency:
    def test_compile_graph_handles_dialect_modules(self, tmp_path):
        lib = tmp_path / "ops.rkt"
        lib.write_text(
            "#lang racket/infix\n"
            "(define (area w h) {w * h})\n"
            "(provide area)\n",
            encoding="utf-8",
        )
        use = tmp_path / "use.rkt"
        use.write_text(
            '#lang racket\n(require "ops.rkt")\n(displayln (area 6 7))\n',
            encoding="utf-8",
        )
        with Runtime(cache_dir=str(tmp_path / "cache")) as rt:
            report = rt.compile_graph([str(lib), str(use)], jobs=2,
                                      mode="thread")
            assert report.ok, report.errors
            assert rt.run_file(str(use)) == "42\n"

    def test_import_hook_sees_dialect_modules(self, tmp_path, monkeypatch):
        pkg = tmp_path / "dialectapp"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "geometry.rkt").write_text(
            "#lang racket/infix\n"
            "(define (hypotenuse-sq a b) {a * a + b * b})\n"
            "(provide hypotenuse-sq)\n",
            encoding="utf-8",
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        install(cache_dir=str(tmp_path / "cache"))
        try:
            mod = importlib.import_module("dialectapp.geometry")
            fn = getattr(mod, "hypotenuse_sq", None) or getattr(
                mod, "hypotenuse-sq"
            )
            assert fn(3, 4) == 25
        finally:
            uninstall()
            for name in [m for m in sys.modules
                         if m.split(".")[0] == "dialectapp"]:
                del sys.modules[name]
