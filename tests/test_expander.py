"""Tests for the hygienic expander, via whole racket programs."""

from __future__ import annotations

import pytest

from repro.errors import (
    RuntimeReproError,
    SyntaxExpansionError,
    UnboundIdentifierError,
)


class TestBasicExpressions:
    def test_literals(self, run):
        assert run("#lang racket\n(displayln 42)") == "42\n"

    def test_application(self, run):
        assert run("#lang racket\n(displayln (+ 1 2))") == "3\n"

    def test_lambda_application(self, run):
        assert run("#lang racket\n(displayln ((lambda (x) (* x x)) 7))") == "49\n"

    def test_rest_arguments(self, run):
        assert run(
            "#lang racket\n(define (f a . rest) (cons a rest))\n(displayln (f 1 2 3))"
        ) == "(1 2 3)\n"

    def test_rest_only(self, run):
        assert run(
            "#lang racket\n(define f (lambda args (length args)))\n(displayln (f 1 2 3))"
        ) == "3\n"

    def test_if_false_branch(self, run):
        assert run("#lang racket\n(displayln (if #f 1 2))") == "2\n"

    def test_only_false_is_false(self, run):
        assert run("#lang racket\n(displayln (if 0 'yes 'no))") == "yes\n"

    def test_begin_sequencing(self, run):
        assert run("#lang racket\n(displayln (begin 1 2 3))") == "3\n"

    def test_set_bang(self, run):
        assert run(
            "#lang racket\n(define x 1)\n(set! x 99)\n(displayln x)"
        ) == "99\n"

    def test_unbound_identifier(self, run):
        with pytest.raises(UnboundIdentifierError):
            run("#lang racket\n(no-such-variable)")

    def test_core_form_as_variable_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(displayln if)")

    def test_empty_application_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n()")


class TestBindingForms:
    def test_let(self, run):
        assert run("#lang racket\n(displayln (let ([x 1] [y 2]) (+ x y)))") == "3\n"

    def test_let_shadows(self, run):
        assert run(
            "#lang racket\n(define x 'outer)\n(displayln (let ([x 'inner]) x))"
        ) == "inner\n"

    def test_let_rhs_sees_outer(self, run):
        assert run(
            "#lang racket\n(define x 1)\n(displayln (let ([x (+ x 1)]) x))"
        ) == "2\n"

    def test_let_star(self, run):
        assert run(
            "#lang racket\n(displayln (let* ([x 1] [y (+ x 1)]) (* x y)))"
        ) == "2\n"

    def test_letrec(self, run):
        assert run(
            """#lang racket
(displayln (letrec ([even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))]
                    [odd? (lambda (n) (if (= n 0) #f (even? (- n 1))))])
  (even? 10)))"""
        ) == "#t\n"

    def test_named_let(self, run):
        assert run(
            """#lang racket
(displayln (let loop ([i 0] [acc '()])
  (if (= i 3) (reverse acc) (loop (+ i 1) (cons i acc)))))"""
        ) == "(0 1 2)\n"

    def test_let_values(self, run):
        assert run(
            "#lang racket\n(displayln (let-values ([(a b) (values 1 2)]) (+ a b)))"
        ) == "3\n"

    def test_duplicate_formals_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(lambda (x x) x)")

    def test_internal_definitions(self, run):
        assert run(
            """#lang racket
(define (f)
  (define a 1)
  (define b (+ a 1))
  (+ a b))
(displayln (f))"""
        ) == "3\n"

    def test_internal_definitions_mutual_recursion(self, run):
        assert run(
            """#lang racket
(define (f n)
  (define (my-even? n) (if (= n 0) #t (my-odd? (- n 1))))
  (define (my-odd? n) (if (= n 0) #f (my-even? (- n 1))))
  (my-even? n))
(displayln (f 8))"""
        ) == "#t\n"

    def test_internal_definitions_preserve_order(self, run):
        assert run(
            """#lang racket
(define (f)
  (define a 1)
  (display "side")
  (define b 2)
  (+ a b))
(displayln (f))"""
        ) == "side3\n"

    def test_body_with_no_expression_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(define (f) (define x 1))\n(f)")


class TestHygiene:
    def test_introduced_binding_does_not_capture(self, run):
        # `or` expands to (let ((t e)) ...); user's t must be untouched
        assert run(
            "#lang racket\n(define t 'user)\n(displayln (or #f t))"
        ) == "user\n"

    def test_user_binding_does_not_shadow_macro_reference(self, run):
        # swap! uses let/set!; binding `let` locally must not break it…
        # (here: a user variable named tmp, same name as the macro's temp)
        assert run(
            """#lang racket
(define-syntax swap! (syntax-rules () [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
(define tmp 1)
(define other 2)
(swap! tmp other)
(displayln (list tmp other))"""
        ) == "(2 1)\n"

    def test_paper_do_10_times_hygiene(self, run):
        # §2.1: "if the bodys use the variable i, it is not interfered with
        # by the use of i in the for loop"
        assert run(
            """#lang racket
(define-syntax do-3-times
  (syntax-rules () [(_ body ...) (for ([i (in-range 3)]) body ...)]))
(define i 'mine)
(do-3-times (display i))
(newline)"""
        ) == "mineminemine\n"

    def test_nested_macro_expansions_independent(self, run):
        assert run(
            """#lang racket
(define-syntax double (syntax-rules () [(_ e) (let ([v e]) (+ v v))]))
(displayln (double (double 3)))"""
        ) == "12\n"

    def test_macro_defining_macro(self, run):
        assert run(
            """#lang racket
(define-syntax def-constant
  (syntax-rules () [(_ name val) (define-syntax name (syntax-rules () [(_) val]))]))
(def-constant five 5)
(displayln (five))"""
        ) == "5\n"


class TestModuleLevel:
    def test_forward_reference_in_function_body(self, run):
        assert run(
            """#lang racket
(define (f) (g))
(define (g) 'late)
(displayln (f))"""
        ) == "late\n"

    def test_duplicate_module_definition_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(define x 1)\n(define x 2)")

    def test_module_level_begin_splices(self, run):
        # the defined names come from the use site, so they are visible to
        # user code (macro-introduced names would hygienically stay private)
        assert run(
            """#lang racket
(define-syntax defs
  (syntax-rules () [(_ x y) (begin (define x 1) (define y 2))]))
(defs a b)
(displayln (+ a b))"""
        ) == "3\n"

    def test_macro_introduced_module_definition_is_private(self, run):
        # sets-of-scopes hygiene: a definition whose name the macro
        # introduced is not visible to user-written references
        with pytest.raises(UnboundIdentifierError):
            run(
                """#lang racket
(define-syntax defs
  (syntax-rules () [(_) (define hidden-by-hygiene 1)]))
(defs)
(displayln hidden-by-hygiene)"""
            )

    def test_use_before_define_at_runtime_rejected(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(displayln undefined-until-later)\n(define undefined-until-later 5)")


class TestIdentifierMacros:
    def test_identifier_macro_in_expression_position(self, run):
        assert run(
            """#lang racket
(define hidden 42)
(define-syntax the-answer (lambda (stx) (quote-syntax hidden)))
(displayln the-answer)"""
        ) == "42\n"


class TestLocalExpand:
    def test_paper_only_lambda_accepts_lambda(self, run):
        # §2.2's only-λ example: local-expand sees through macros
        assert run(
            """#lang racket
(define-syntax (only-lambda stx)
  (define c (local-expand (car (cdr (syntax-e stx))) 'expression '()))
  (define k (car (syntax-e c)))
  (if (free-identifier=? (quote-syntax #%plain-lambda) k)
      c
      (raise-syntax-error 'only-lambda "not a lambda" stx)))
(displayln (procedure? (only-lambda (lambda (x) x))))"""
        ) == "#t\n"

    def test_paper_only_lambda_sees_through_macros(self, run):
        assert run(
            """#lang racket
(define-syntax function (syntax-rules () [(_ args body) (lambda args body)]))
(define-syntax (only-lambda stx)
  (define c (local-expand (car (cdr (syntax-e stx))) 'expression '()))
  (define k (car (syntax-e c)))
  (if (free-identifier=? (quote-syntax #%plain-lambda) k)
      c
      (raise-syntax-error 'only-lambda "not a lambda" stx)))
(displayln (procedure? (only-lambda (function (x) x))))"""
        ) == "#t\n"

    def test_paper_only_lambda_rejects_non_lambda(self, run):
        with pytest.raises(SyntaxExpansionError):
            run(
                """#lang racket
(define-syntax (only-lambda stx)
  (define c (local-expand (car (cdr (syntax-e stx))) 'expression '()))
  (define k (car (syntax-e c)))
  (if (free-identifier=? (quote-syntax #%plain-lambda) k)
      c
      (raise-syntax-error 'only-lambda "not a lambda" stx)))
(only-lambda 7)"""
            )


class TestProceduralMacros:
    def test_paper_when_compiled(self, run):
        # §2.1: compile-time clock capture; at runtime the value is fixed
        out = run(
            """#lang racket
(define-syntax (when-compiled stx)
  (datum->syntax stx (list (quote-syntax quote) (datum->syntax stx (current-seconds)))))
(define t1 (when-compiled))
(define t2 (when-compiled))
(displayln (and (exact-integer? t1) (= t1 t2)))"""
        )
        assert out == "#t\n"

    def test_transformer_computes_from_input(self, run):
        assert run(
            """#lang racket
(define-syntax (count-args stx)
  (datum->syntax stx (list (quote-syntax quote)
                           (datum->syntax stx (- (length (syntax-e stx)) 1)))))
(displayln (count-args a b c))"""
        ) == "3\n"

    def test_syntax_property_roundtrip_through_transformers(self, run):
        assert run(
            """#lang racket
(define-syntax (stash stx)
  (syntax-property-put (car (cdr (syntax-e stx))) 'mark 'here))
(define-syntax (retrieve stx)
  (datum->syntax stx
    (list (quote-syntax quote)
          (datum->syntax stx (syntax-property-get (local-expand (car (cdr (syntax-e stx))) 'expression '()) 'mark)))))
(displayln 'ok)"""
        ) == "ok\n"

    def test_transformer_returning_non_syntax_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run(
                """#lang racket
(define-syntax (bad stx) 42)
(bad)"""
            )
