"""Tests for the evaluator: tail calls, arity, multiple values, control."""

from __future__ import annotations

import pytest

from repro.errors import ArityError, RuntimeReproError


class TestTailCalls:
    def test_deep_tail_recursion(self, run):
        # far past any Python recursion limit: requires proper tail calls
        assert run(
            """#lang racket
(define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1))))
(displayln (count 100000 0))"""
        ) == "100000\n"

    def test_mutual_tail_recursion(self, run):
        assert run(
            """#lang racket
(define (even-steps n) (if (= n 0) 'even (odd-steps (- n 1))))
(define (odd-steps n) (if (= n 0) 'odd (even-steps (- n 1))))
(displayln (even-steps 50001))"""
        ) == "odd\n"

    def test_tail_position_through_let(self, run):
        assert run(
            """#lang racket
(define (loop n) (if (= n 0) 'done (let ([m (- n 1)]) (loop m))))
(displayln (loop 60000))"""
        ) == "done\n"

    def test_tail_position_through_cond_and_begin(self, run):
        assert run(
            """#lang racket
(define (loop n)
  (cond [(= n 0) 'done]
        [else (begin (void) (loop (- n 1)))]))
(displayln (loop 60000))"""
        ) == "done\n"

    def test_non_tail_recursion_still_works(self, run):
        assert run(
            """#lang racket
(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))
(displayln (sum 500))"""
        ) == "125250\n"


class TestArity:
    def test_too_few_arguments(self, run):
        with pytest.raises(ArityError):
            run("#lang racket\n((lambda (a b) a) 1)")

    def test_too_many_arguments(self, run):
        with pytest.raises(ArityError):
            run("#lang racket\n((lambda (a) a) 1 2)")

    def test_rest_arity_minimum(self, run):
        with pytest.raises(ArityError):
            run("#lang racket\n((lambda (a . rest) a))")

    def test_primitive_arity(self, run):
        with pytest.raises(ArityError):
            run("#lang racket\n(cons 1)")

    def test_applying_non_procedure(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(5 6)")


class TestValues:
    def test_multiple_values_through_let_values(self, run):
        assert run(
            """#lang racket
(define (two) (values 1 2))
(displayln (let-values ([(a b) (two)]) (list a b)))"""
        ) == "(1 2)\n"

    def test_define_values_multiple(self, run):
        assert run(
            "#lang racket\n(define-values (a b c) (values 1 2 3))\n(displayln (+ a b c))"
        ) == "6\n"

    def test_call_with_values(self, run):
        assert run(
            "#lang racket\n(displayln (call-with-values (lambda () (values 1 2)) +))"
        ) == "3\n"

    def test_single_value_is_plain(self, run):
        assert run("#lang racket\n(displayln (values 7))") == "7\n"

    def test_value_count_mismatch(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(define-values (a b) (values 1))")

    def test_values_where_one_expected(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(define x (values 1 2))")


class TestApplyAndControl:
    def test_apply(self, run):
        assert run("#lang racket\n(displayln (apply + 1 (list 2 3)))") == "6\n"

    def test_apply_with_closure(self, run):
        assert run(
            "#lang racket\n(displayln (apply (lambda (a b) (* a b)) (list 6 7)))"
        ) == "42\n"

    def test_error_raises(self, run):
        with pytest.raises(RuntimeReproError, match="boom"):
            run('#lang racket\n(error "boom")')

    def test_error_with_symbol_who(self, run):
        with pytest.raises(RuntimeReproError, match="my-fn: bad input"):
            run('#lang racket\n(error \'my-fn "bad input")')

    def test_letrec_use_before_init_detected(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(displayln (letrec ([x (+ x 1)]) x))")


class TestClosures:
    def test_closure_captures_environment(self, run):
        assert run(
            """#lang racket
(define (make-adder n) (lambda (x) (+ x n)))
(define add3 (make-adder 3))
(displayln (add3 4))"""
        ) == "7\n"

    def test_closures_share_mutable_state(self, run):
        assert run(
            """#lang racket
(define (make-counter)
  (define n (box 0))
  (lambda () (set-box! n (+ 1 (unbox n))) (unbox n)))
(define c (make-counter))
(c) (c)
(displayln (c))"""
        ) == "3\n"

    def test_set_bang_on_captured_variable(self, run):
        assert run(
            """#lang racket
(define (make-counter)
  (let ([n 0])
    (lambda () (set! n (+ n 1)) n)))
(define c (make-counter))
(c) (c)
(displayln (c))"""
        ) == "3\n"

    def test_distinct_closure_instances(self, run):
        assert run(
            """#lang racket
(define (make-counter) (let ([n 0]) (lambda () (set! n (+ n 1)) n)))
(define c1 (make-counter))
(define c2 (make-counter))
(c1) (c1)
(displayln (list (c1) (c2)))"""
        ) == "(3 1)\n"


class TestShadowingPrimitives:
    def test_user_can_shadow_primitive(self, run):
        assert run(
            """#lang racket
(define (use-plus +) (+ 10 20))
(displayln (use-plus -))"""
        ) == "-10\n"

    def test_module_level_redefinition_of_primitive_name(self, run):
        assert run(
            """#lang racket
(define my-car car)
(displayln (my-car (list 1 2)))"""
        ) == "1\n"
