"""Differential suite: the pyc backend against the reference interpreter.

The pyc backend (DESIGN.md §9) lowers core AST to CPython code objects; the
interpreter walks closure-compiled trees. Both are full backends for the
same language, so every observable — values, printed output, diagnostic
codes, guard-exhaustion codes and step counts, instrumentation counters —
must agree exactly. This suite runs every benchmark program under every
configuration on both backends, plus hand-written feature and error
programs, the examples as subprocesses, and the fault-injection crash
scenario from ``test_faults.py`` under ``pyc``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

sys.path.insert(0, ".")  # benchmarks/ is a top-level package

from benchmarks.harness import CONFIGURATIONS, Harness
from benchmarks.programs import ALL_PROGRAMS

from repro import (
    Budget,
    BudgetExhausted,
    CancelToken,
    EvaluationCancelled,
    ReproError,
    Runtime,
)
from repro.faults import FaultPlan, InjectedCrash, use_fault_plan

BACKENDS = ("interp", "pyc")

#: counters that must agree exactly across backends
COUNTERS = (
    "generic_dispatches", "tag_checks", "unsafe_ops", "contract_checks"
)


def run_under(backend: str, source: str, *, budget=None, path="<diff>"):
    """Run ``source`` on ``backend``; return ``(output, error, stats)``.

    ``error`` is ``None`` on success, else ``(type-name, code, message,
    steps_consumed)`` — everything the two backends must agree on when a
    program fails.
    """
    with Runtime(backend=backend, budget=budget) as rt:
        try:
            output = rt.run_source(source, path=path)
            error = None
        except (BudgetExhausted, EvaluationCancelled) as err:
            output = None
            error = (
                type(err).__name__, err.code, str(err), err.steps_consumed
            )
        except ReproError as err:
            output = None
            error = (
                type(err).__name__, getattr(err, "code", None), str(err), None
            )
        return output, error, rt.stats.snapshot()


def assert_backends_agree(source: str, *, budget=None):
    interp = run_under("interp", source, budget=budget)
    pyc = run_under("pyc", source, budget=budget)
    assert interp[0] == pyc[0], "output differs between backends"
    assert interp[1] == pyc[1], "diagnostic differs between backends"
    for counter in COUNTERS + (("eval_steps",) if budget is not None else ()):
        assert interp[2][counter] == pyc[2][counter], (
            f"{counter}: interp={interp[2][counter]} pyc={pyc[2][counter]}"
        )


# ---------------------------------------------------------------------------
# every benchmark program, every configuration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def interp_harness():
    return Harness(backend="interp")


@pytest.fixture(scope="module")
def pyc_harness():
    return Harness(backend="pyc")


@pytest.mark.parametrize("config", CONFIGURATIONS)
@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_benchmark_program_differential(
    interp_harness, pyc_harness, program, config
):
    interp = interp_harness.run(program, config)
    pyc = pyc_harness.run(program, config)
    assert interp.output == pyc.output
    assert interp.generic_dispatches == pyc.generic_dispatches
    assert interp.tag_checks == pyc.tag_checks
    assert interp.unsafe_ops == pyc.unsafe_ops
    assert interp.contract_checks == pyc.contract_checks


# ---------------------------------------------------------------------------
# language features, hand-written
# ---------------------------------------------------------------------------

FEATURE_PROGRAMS = {
    "multiple-values": """#lang racket
(define-values (q r) (values 17 5))
(displayln (+ q r))
(call-with-values (lambda () (values 1 2 3)) (lambda (a b c) (displayln (list a b c))))
""",
    "set!-cells": """#lang racket
(define counter
  (let ([n 0])
    (lambda () (set! n (+ n 1)) n)))
(counter)
(counter)
(displayln (counter))
""",
    "letrec-mutual": """#lang racket
(define (even? n) (if (= n 0) #t (odd? (- n 1))))
(define (odd? n) (if (= n 0) #f (even? (- n 1))))
(displayln (even? 10001))
""",
    "deep-non-tail": """#lang racket
(define (count n) (if (= n 0) 0 (+ 1 (count (- n 1)))))
(displayln (count 300))
""",
    "tail-loop": """#lang racket
(define (iter n acc) (if (= n 0) acc (iter (- n 1) (+ acc 1))))
(displayln (iter 100000 0))
""",
    "rest-args": """#lang racket
(define (f x . rest) (cons x rest))
(displayln (f 1 2 3))
(displayln (apply f (list 10 20)))
""",
    "higher-order": """#lang racket
(displayln (map (lambda (x) (* x x)) (list 1 2 3 4)))
(displayln (foldl + 0 (list 1 2 3 4 5)))
""",
    "vectors-strings": """#lang racket
(define v (make-vector 3 0))
(vector-set! v 1 "mid")
(displayln (vector-ref v 1))
(displayln (string-append "a" "b" "c"))
""",
    "shadowing-let": """#lang racket
(define x 1)
(displayln (let ([x 2]) (let ([x (+ x 10)]) x)))
(displayln x)
""",
}


@pytest.mark.parametrize("name", sorted(FEATURE_PROGRAMS))
def test_feature_differential(name):
    assert_backends_agree(FEATURE_PROGRAMS[name])


@pytest.mark.parametrize("name", sorted(FEATURE_PROGRAMS))
def test_feature_differential_governed(name):
    """Same programs under a counting guard: eval_steps must match too."""
    assert_backends_agree(FEATURE_PROGRAMS[name], budget=True)


def test_typed_untyped_contract_boundary():
    """A typed module required from untyped code raises the same contract
    diagnostic (code and message) on both backends."""
    typed = """#lang typed
(define (double [n : Integer]) : Integer (* 2 n))
(provide double)
"""
    untyped = """#lang racket
(require "t")
(displayln (double "nope"))
"""
    results = []
    for backend in BACKENDS:
        with Runtime(backend=backend) as rt:
            rt.register_module("t", typed)
            rt.register_module("u", untyped)
            try:
                results.append(("ok", rt.run("u")))
            except ReproError as err:
                results.append((type(err).__name__,
                                getattr(err, "code", None), str(err)))
    assert results[0] == results[1]
    assert results[0][0] != "ok"


# ---------------------------------------------------------------------------
# runtime errors: identical diagnostics, identical counters on the way down
# ---------------------------------------------------------------------------

ERROR_PROGRAMS = {
    "car-of-non-pair": "#lang racket\n(car 5)\n",
    "vector-out-of-range": "#lang racket\n(vector-ref (vector 1 2) 9)\n",
    "add-non-number": "#lang racket\n(+ 1 \"x\")\n",
    "compare-non-real": "#lang racket\n(< 1 \"y\")\n",
    "use-before-definition": "#lang racket\n(define a b)\n(define b 1)\n",
    "arity-mismatch": "#lang racket\n(define (f x y) x)\n(f 1)\n",
    "apply-non-procedure": "#lang racket\n(define x 3)\n(x 1 2)\n",
}


@pytest.mark.parametrize("name", sorted(ERROR_PROGRAMS))
def test_error_differential(name):
    assert_backends_agree(ERROR_PROGRAMS[name])


# ---------------------------------------------------------------------------
# guard exhaustion: G001–G005 with identical codes and step counts
# ---------------------------------------------------------------------------

LOOP = "#lang racket\n(define (loop) (loop))\n(loop)\n"
DEEP = ERROR_PROGRAMS  # noqa: F841  (documentation cross-ref only)


class TestGuardParity:
    def test_g001_step_budget_identical_step_counts(self):
        assert_backends_agree(LOOP, budget={"steps": 5000})
        _, error, _ = run_under("pyc", LOOP, budget={"steps": 5000})
        assert error[1] == "G001"

    def test_g002_deadline_fires_on_both(self):
        for backend in BACKENDS:
            _, error, _ = run_under(backend, LOOP, budget={"seconds": 0.2})
            assert error is not None and error[1] == "G002", backend

    def test_g003_depth_budget_identical(self):
        deep = FEATURE_PROGRAMS["deep-non-tail"]
        assert_backends_agree(deep, budget={"max_depth": 50})
        _, error, _ = run_under("pyc", deep, budget={"max_depth": 50})
        assert error[1] == "G003"

    def test_g003_tail_calls_do_not_deepen_on_either_backend(self):
        assert_backends_agree(
            FEATURE_PROGRAMS["tail-loop"], budget={"max_depth": 50}
        )
        output, error, _ = run_under(
            "pyc", FEATURE_PROGRAMS["tail-loop"], budget={"max_depth": 50}
        )
        assert error is None and output == "100000\n"

    def test_g004_allocation_budget_identical(self):
        bomb = """#lang racket
(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
(displayln (length (build 500)))
"""
        assert_backends_agree(bomb, budget={"allocations": 100})
        _, error, _ = run_under("pyc", bomb, budget={"allocations": 100})
        assert error[1] == "G004"

    def test_g005_cancellation_identical(self):
        token = CancelToken()
        token.cancel("host shutdown")
        results = []
        for backend in BACKENDS:
            with Runtime(backend=backend,
                         budget=Budget(cancel=token)) as rt:
                with pytest.raises(EvaluationCancelled) as excinfo:
                    rt.run_source(LOOP, path="<g005>")
            results.append((excinfo.value.code, str(excinfo.value)))
        assert results[0] == results[1]
        assert results[0][0] == "G005"

    def test_successful_run_has_identical_step_counts(self):
        fib = """#lang racket
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(displayln (fib 15))
"""
        assert_backends_agree(fib, budget=True)


# ---------------------------------------------------------------------------
# examples/ as subprocesses, selected via $REPRO_BACKEND
# ---------------------------------------------------------------------------

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def _run_example(name: str, backend: str) -> str:
    env = dict(os.environ)
    env["REPRO_BACKEND"] = backend
    env["PYTHONPATH"] = os.pathsep.join(
        ["src", env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.join(os.path.dirname(__file__), ".."),
        timeout=120,
    )
    assert proc.returncode == 0, f"{name} [{backend}] failed:\n{proc.stderr}"
    return proc.stdout


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_differential(name):
    import re

    def normalize(text: str) -> str:
        # optimizer_tour prints wall-clock timings; mask them
        return re.sub(r"\s*\d+(\.\d+)?\s*ms", " X ms", text)

    assert normalize(_run_example(name, "interp")) == normalize(
        _run_example(name, "pyc")
    )


# ---------------------------------------------------------------------------
# cache: warm starts skip codegen; faults recover; doctor reports old formats
# ---------------------------------------------------------------------------

SOURCE = "#lang racket\n(define (sq x) (* x x))\n(displayln (sq 7))\n"
EXPECTED = "49\n"


def pyc_cached_runtime(tmp_path, **modules) -> Runtime:
    rt = Runtime(cache_dir=str(tmp_path / "cache"), backend="pyc")
    for path, source in modules.items():
        rt.register_module(path, source)
    return rt


class TestPycCache:
    def test_warm_start_skips_codegen(self, tmp_path):
        with pyc_cached_runtime(tmp_path, m=SOURCE) as rt:
            assert rt.run("m") == EXPECTED
            assert rt.stats.pyc_codegens >= 1
            assert rt.stats.cache_stores == 1
        with pyc_cached_runtime(tmp_path, m=SOURCE) as rt2:
            assert rt2.run("m") == EXPECTED
            assert rt2.stats.cache_hits == 1
            # the marshalled code objects came out of the .zo artifact:
            # zero code generation on the warm path
            assert rt2.stats.pyc_codegens == 0
            assert rt2.stats.pyc_links >= 1

    def test_interp_artifact_upgraded_for_pyc_runtime(self, tmp_path):
        """An artifact stored by an interp Runtime is still usable by a pyc
        Runtime (which generates and runs code for it)."""
        with Runtime(cache_dir=str(tmp_path / "cache")) as rt:
            rt.register_module("m", SOURCE)
            assert rt.run("m") == EXPECTED
        with pyc_cached_runtime(tmp_path, m=SOURCE) as rt2:
            assert rt2.run("m") == EXPECTED
            assert rt2.stats.cache_hits == 1

    def test_mid_instantiation_crash_leaves_recoverable_debris(
        self, tmp_path
    ):
        """``test_faults.py``'s crash-between-write-and-rename scenario,
        under the pyc backend: the kill surfaces, the cache holds only
        torn-write debris (never a torn artifact), and a later runtime
        recovers by recompiling."""
        rt = pyc_cached_runtime(tmp_path, m=SOURCE)
        with pytest.raises(InjectedCrash):
            with use_fault_plan(FaultPlan().rule("cache.replace", "crash")):
                rt.run("m")
        cache_dir = rt.cache.dir
        debris = [n for n in os.listdir(cache_dir) if ".tmp." in n]
        assert debris
        assert not [n for n in os.listdir(cache_dir) if n.endswith(".zo")]
        rt.close()
        with pyc_cached_runtime(tmp_path, m=SOURCE) as rt2:
            assert rt2.run("m") == EXPECTED
            # the recovery store may reuse (and rename away) the debris
            # file's name within this process; doctor sweeps what is left
            remaining = [n for n in os.listdir(cache_dir) if ".tmp." in n]
            report = rt2.cache.doctor()
            assert sorted(report["tmp_removed"]) == sorted(remaining)
            assert not [
                n for n in os.listdir(cache_dir) if ".tmp." in n
            ]

    def test_backend_precedence_explicit_beats_env(self, monkeypatch):
        """Backend selection precedence: the explicit ``Runtime(backend=)``
        argument beats ``$REPRO_BACKEND``, which beats the default."""
        monkeypatch.setenv("REPRO_BACKEND", "pyc")
        with Runtime(backend="interp") as rt:
            assert rt.backend == "interp"
        with Runtime() as rt:
            assert rt.backend == "pyc"
        monkeypatch.delenv("REPRO_BACKEND")
        with Runtime() as rt:
            assert rt.backend == "interp"

    def test_backend_precedence_explicit_beats_bad_env(self, monkeypatch):
        """An invalid env value must not poison an explicit choice — the
        env is only consulted when no argument is given."""
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with Runtime(backend="interp") as rt:
            assert rt.run_source("#lang racket\n(displayln 'up)\n") == "up\n"
        with pytest.raises(ValueError, match="bogus"):
            Runtime()

    def test_cli_backend_flag_beats_env(self, tmp_path, capsys, monkeypatch):
        from repro.tools.runner import main

        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        prog = tmp_path / "p.rkt"
        prog.write_text("#lang racket\n(displayln 'cli)\n")
        # explicit flag wins: runs despite the broken env
        assert main(["--backend", "pyc", str(prog)]) == 0
        assert capsys.readouterr().out == "cli\n"
        # without the flag the env is consulted and rejected cleanly
        assert main([str(prog)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_doctor_reports_old_format_artifacts(self, tmp_path):
        """A structurally intact artifact from an earlier cache format is
        reported as old, not quarantined (see satellite: version-skew)."""
        import hashlib

        with pyc_cached_runtime(tmp_path, m=SOURCE) as rt:
            assert rt.run("m") == EXPECTED
            payload = b"stale pickle bytes from an earlier release"
            old = (b"REPROZO\x02"
                   + hashlib.sha256(payload).digest() + payload)
            stale_path = os.path.join(rt.cache.dir, "0" * 64 + ".zo")
            with open(stale_path, "wb") as f:
                f.write(old)
            report = rt.cache.doctor()
            assert [name for name, _ in report["old_version"]] == [
                "0" * 64 + ".zo"
            ]
            assert report["quarantined"] == []
            assert os.path.exists(stale_path)  # reported, never deleted
