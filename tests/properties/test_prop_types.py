"""Properties of the type lattice: subtyping is a preorder, joins are upper
bounds, serialization roundtrips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.langs.typed_common import types as ty

base_types = st.sampled_from(
    [
        ty.INTEGER, ty.FLOAT, ty.REAL, ty.NUMBER, ty.FLOAT_COMPLEX,
        ty.BOOLEAN, ty.STRING, ty.CHAR, ty.SYMBOL, ty.VOID, ty.ANY,
        ty.NULL_TYPE, ty.NOTHING,
    ]
)


def types_strategy():
    return st.recursive(
        base_types,
        lambda children: st.one_of(
            st.builds(ty.ListofType, children),
            st.builds(ty.PairType, children, children),
            st.builds(ty.VectorofType, children),
            st.builds(
                lambda params, result: ty.FunType(params, result),
                st.lists(children, max_size=2),
                children,
            ),
            st.lists(children, min_size=2, max_size=3).map(ty.make_union),
        ),
        max_leaves=6,
    )


TYPES = types_strategy()


@given(TYPES)
@settings(max_examples=200)
def test_subtype_reflexive(t):
    assert ty.subtype(t, t)


@given(TYPES, TYPES, TYPES)
@settings(max_examples=300, deadline=None)
def test_subtype_transitive(a, b, c):
    if ty.subtype(a, b) and ty.subtype(b, c):
        assert ty.subtype(a, c)


@given(TYPES)
def test_any_top_nothing_bottom(t):
    assert ty.subtype(t, ty.ANY)
    assert ty.subtype(ty.NOTHING, t)


@given(TYPES, TYPES)
@settings(max_examples=200)
def test_join_is_upper_bound(a, b):
    joined = ty.join(a, b)
    assert ty.subtype(a, joined)
    assert ty.subtype(b, joined)


@given(TYPES, TYPES)
def test_join_commutes_up_to_mutual_subtyping(a, b):
    ab = ty.join(a, b)
    ba = ty.join(b, a)
    assert ty.subtype(ab, ba) and ty.subtype(ba, ab)


@given(TYPES)
@settings(max_examples=200)
def test_serialize_roundtrip(t):
    assert ty.parse_type_datum(ty.serialize(t)) == t


@given(TYPES)
def test_serialize_to_value_roundtrip(t):
    assert ty.parse_type_datum(ty.serialize_to_value(t)) == t


@given(TYPES, TYPES)
def test_union_contains_members(a, b):
    u = ty.make_union([a, b])
    assert ty.subtype(a, u) and ty.subtype(b, u)


@given(st.lists(TYPES, min_size=1, max_size=4))
def test_union_normalization_idempotent(members):
    u1 = ty.make_union(members)
    u2 = ty.make_union([u1])
    assert ty.subtype(u1, u2) and ty.subtype(u2, u1)


@given(TYPES, TYPES)
def test_listof_covariance_property(a, b):
    if ty.subtype(a, b):
        assert ty.subtype(ty.ListofType(a), ty.ListofType(b))


@given(TYPES, TYPES, TYPES)
@settings(max_examples=200, deadline=None)
def test_function_contravariance_property(a, b, r):
    if ty.subtype(a, b):
        wide = ty.FunType([b], r)
        narrow = ty.FunType([a], r)
        assert ty.subtype(wide, narrow)
