"""Properties of scope-set operations — the algebra hygiene rests on."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reader import read_string_one
from repro.syn.scopes import Scope
from repro.syn.syntax import Syntax, syntax_to_datum, write_datum

# a pool of scopes, indexed by small ints so hypothesis can share them
_POOL = [Scope(f"pool{i}") for i in range(8)]
scopes = st.sampled_from(_POOL)

datum_texts = st.sampled_from(
    ["x", "(f x y)", "(a (b (c)) 3)", "(lambda (x) (+ x 1))", '(s "str" #t 1.5)']
)
syntaxes = datum_texts.map(read_string_one)


def all_scope_sets(stx: Syntax) -> list[frozenset]:
    out = [stx.scopes]
    if isinstance(stx.e, tuple):
        for child in stx.e:
            out.extend(all_scope_sets(child))
    return out


@given(syntaxes, scopes)
def test_flip_is_involution(stx, sc):
    twice = stx.flip_scope(sc).flip_scope(sc)
    assert all_scope_sets(twice) == all_scope_sets(stx)


@given(syntaxes, scopes)
def test_add_is_idempotent(stx, sc):
    once = stx.add_scope(sc)
    assert all_scope_sets(once.add_scope(sc)) == all_scope_sets(once)


@given(syntaxes, scopes)
def test_remove_after_add_restores_when_absent(stx, sc):
    if all(sc not in s for s in all_scope_sets(stx)):
        roundtrip = stx.add_scope(sc).remove_scope(sc)
        assert all_scope_sets(roundtrip) == all_scope_sets(stx)


@given(syntaxes, scopes, scopes)
def test_adds_commute(stx, a, b):
    ab = stx.add_scope(a).add_scope(b)
    ba = stx.add_scope(b).add_scope(a)
    assert all_scope_sets(ab) == all_scope_sets(ba)


@given(syntaxes, scopes)
def test_flip_equals_add_when_absent(stx, sc):
    if all(sc not in s for s in all_scope_sets(stx)):
        assert all_scope_sets(stx.flip_scope(sc)) == all_scope_sets(stx.add_scope(sc))


@given(syntaxes, scopes)
@settings(max_examples=100)
def test_scope_ops_preserve_structure(stx, sc):
    assert write_datum(syntax_to_datum(stx.add_scope(sc))) == write_datum(
        syntax_to_datum(stx)
    )


@given(syntaxes, scopes)
def test_scope_ops_preserve_srcloc(stx, sc):
    assert stx.add_scope(sc).srcloc == stx.srcloc
    assert stx.flip_scope(sc).srcloc == stx.srcloc
