"""Property tests for the Datalog engine, cross-validated against networkx.

Reachability computed by the Datalog fixpoint on random edge sets must equal
graph reachability computed by networkx — an independent oracle.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.langs.datalog.engine import Database, Rule
from repro.runtime.values import Symbol


def sym(name: str) -> Symbol:
    return Symbol(name)


NODES = [f"n{i}" for i in range(8)]

edges = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=16,
    unique=True,
)


def reachability_db(edge_list) -> Database:
    db = Database()
    for a, b in edge_list:
        db.assert_fact(("edge", sym(a), sym(b)))
    db.assert_rule(Rule(("path", sym("X"), sym("Y")), (("edge", sym("X"), sym("Y")),)))
    db.assert_rule(
        Rule(
            ("path", sym("X"), sym("Z")),
            (("edge", sym("X"), sym("Y")), ("path", sym("Y"), sym("Z"))),
        )
    )
    return db


def networkx_paths(edge_list) -> set[tuple[str, str]]:
    graph = nx.DiGraph()
    graph.add_nodes_from(NODES)
    graph.add_edges_from(edge_list)
    out = set()
    for a in graph.nodes:
        for b in nx.descendants(graph, a):
            out.add((a, b))
    # networkx descendants excludes self unless on a cycle through itself;
    # handle self-reachability via cycles containing the node
    for a, b in edge_list:
        if a == b:
            out.add((a, a))
    for cycle in nx.simple_cycles(graph):
        for node in cycle:
            out.add((node, node))
    return out


@given(edges)
@settings(max_examples=100, deadline=None)
def test_datalog_reachability_matches_networkx(edge_list):
    db = reachability_db(edge_list)
    datalog_paths = {
        (atom[1].name, atom[2].name)
        for atom in db.query_atoms(("path", sym("A"), sym("B")))
    }
    assert datalog_paths == networkx_paths(edge_list)


@given(edges)
@settings(max_examples=50, deadline=None)
def test_saturation_is_idempotent(edge_list):
    db = reachability_db(edge_list)
    db.saturate()
    first = set(db.facts.keys())
    db._saturated = False
    db.saturate()
    assert set(db.facts.keys()) == first


@given(edges, st.sampled_from(NODES))
@settings(max_examples=50, deadline=None)
def test_ground_queries_consistent_with_open_queries(edge_list, source):
    db = reachability_db(edge_list)
    open_answers = {
        atom[2].name for atom in db.query_atoms(("path", sym(source), sym("B")))
    }
    for target in NODES:
        ground = db.query(("path", sym(source), sym(target)))
        assert (target in open_answers) == bool(ground)
