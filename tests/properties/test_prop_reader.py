"""Property: written datums read back to equal datums (reader/printer
roundtrip), for the full value grammar."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reader import read_string_one
from repro.runtime import values as v
from repro.runtime.equality import equal
from repro.runtime.printing import write_value
from repro.syn.syntax import datum_to_value, syntax_to_datum

# -- strategies ----------------------------------------------------------------

symbols = st.from_regex(r"[a-zA-Z<>=!?*+/_-][a-zA-Z0-9<>=!?*+/_-]{0,10}", fullmatch=True).filter(
    lambda s: s not in (".", "...", "-", "+") and not _looks_numeric(s)
).map(v.Symbol)


def _looks_numeric(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return s[0].isdigit() or (len(s) > 1 and s[0] in "+-" and s[1].isdigit())


integers = st.integers(min_value=-(10**12), max_value=10**12)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
rationals = st.builds(
    Fraction, st.integers(-1000, 1000), st.integers(1, 1000)
).filter(lambda f: f.denominator != 1)
strings = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12
)
chars = st.characters(min_codepoint=33, max_codepoint=126).map(v.Char)
booleans = st.booleans()

atoms = st.one_of(integers, floats, rationals, strings, chars, booleans, symbols)


def values_strategy():
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, max_size=4).map(v.from_list),
            st.lists(children, max_size=3).map(v.MVector),
        ),
        max_leaves=12,
    )


# -- the property ----------------------------------------------------------------


@given(values_strategy())
@settings(max_examples=300, deadline=None)
def test_write_read_roundtrip(value):
    text = write_value(value)
    reread = datum_to_value(syntax_to_datum(read_string_one(text)))
    assert equal(value, reread), f"{text!r} reread as {write_value(reread)!r}"


@given(floats)
@settings(max_examples=200, deadline=None)
def test_float_roundtrip_exact(x):
    reread = datum_to_value(syntax_to_datum(read_string_one(write_value(x))))
    assert isinstance(reread, float) and (reread == x or (x != x and reread != reread))


@given(integers)
def test_integer_roundtrip(n):
    assert datum_to_value(syntax_to_datum(read_string_one(str(n)))) == n
