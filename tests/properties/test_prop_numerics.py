"""Properties of the numeric tower.

Key invariant for the paper's optimizer: every unsafe specialized operation
agrees exactly with its generic counterpart on operands of the right type —
that is what makes the fig. 5 rewriting semantics-preserving.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.runtime import numerics as num

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
all_floats = st.floats(width=64)
ints = st.integers(min_value=-(10**9), max_value=10**9)
fractions = st.builds(Fraction, st.integers(-999, 999), st.integers(1, 999))
reals = st.one_of(ints, finite_floats, fractions)


def same_number(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (a == b) or (a != a and b != b)
    return type(a) is type(b) and a == b


class TestUnsafeAgreesWithGeneric:
    @given(finite_floats, finite_floats)
    @settings(max_examples=300)
    def test_fl_add(self, a, b):
        assert same_number(num.unsafe_fl_add(a, b), num.generic_add(a, b))

    @given(finite_floats, finite_floats)
    def test_fl_sub(self, a, b):
        assert same_number(num.unsafe_fl_sub(a, b), num.generic_sub(a, b))

    @given(finite_floats, finite_floats)
    def test_fl_mul(self, a, b):
        assert same_number(num.unsafe_fl_mul(a, b), num.generic_mul(a, b))

    @given(all_floats, all_floats)
    def test_fl_div(self, a, b):
        assume(not (a != a or b != b))
        assert same_number(num.unsafe_fl_div(a, b), num.generic_div(a, b))

    @given(finite_floats, finite_floats)
    def test_fl_comparisons(self, a, b):
        assert num.unsafe_fl_lt(a, b) == num.generic_lt(a, b)
        assert num.unsafe_fl_le(a, b) == num.generic_le(a, b)
        assert num.unsafe_fl_gt(a, b) == num.generic_gt(a, b)
        assert num.unsafe_fl_ge(a, b) == num.generic_ge(a, b)
        assert num.unsafe_fl_eq(a, b) == num.generic_num_eq(a, b)

    @given(finite_floats)
    def test_fl_abs(self, a):
        assert same_number(num.unsafe_fl_abs(a), num.generic_abs(a))

    @given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
    def test_fl_sqrt_nonnegative(self, a):
        assert same_number(num.unsafe_fl_sqrt(a), num.generic_sqrt(a))

    @given(ints, ints)
    def test_fx_ops(self, a, b):
        assert num.unsafe_fx_add(a, b) == num.generic_add(a, b)
        assert num.unsafe_fx_sub(a, b) == num.generic_sub(a, b)
        assert num.unsafe_fx_mul(a, b) == num.generic_mul(a, b)
        assert num.unsafe_fx_lt(a, b) == num.generic_lt(a, b)

    @given(ints, ints.filter(lambda x: x != 0))
    def test_fx_quotient_remainder(self, a, b):
        assert num.unsafe_fx_quotient(a, b) == num.generic_quotient(a, b)
        assert num.unsafe_fx_remainder(a, b) == num.generic_remainder(a, b)

    @given(
        st.complex_numbers(allow_nan=False, allow_infinity=False, max_magnitude=1e100),
        st.complex_numbers(allow_nan=False, allow_infinity=False, max_magnitude=1e100),
    )
    def test_fc_ops(self, a, b):
        assert num.unsafe_fc_add(a, b) == num.generic_add(a, b)
        assert num.unsafe_fc_sub(a, b) == num.generic_sub(a, b)
        assert num.unsafe_fc_mul(a, b) == num.generic_mul(a, b)


class TestAlgebraicProperties:
    @given(reals, reals)
    def test_addition_commutes(self, a, b):
        assert same_number(num.generic_add(a, b), num.generic_add(b, a))

    @given(ints, ints, ints)
    def test_exact_addition_associates(self, a, b, c):
        lhs = num.generic_add(num.generic_add(a, b), c)
        rhs = num.generic_add(a, num.generic_add(b, c))
        assert lhs == rhs

    @given(reals)
    def test_zero_identity(self, a):
        assert same_number(num.generic_add(a, 0), num.normalize(a))

    @given(reals)
    def test_negation_inverse(self, a):
        assert num.generic_add(a, num.generic_neg(a)) == 0

    @given(st.one_of(ints, fractions).filter(lambda x: x != 0))
    def test_exact_division_inverse(self, a):
        assert num.generic_mul(num.generic_div(1, a), a) == 1

    @given(ints, ints.filter(lambda x: x != 0))
    def test_quotient_remainder_identity(self, a, b):
        q = num.generic_quotient(a, b)
        r = num.generic_remainder(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)

    @given(reals, reals)
    def test_comparison_totality(self, a, b):
        assert num.generic_lt(a, b) or num.generic_ge(a, b)
        assert num.generic_lt(a, b) == (not num.generic_ge(a, b))

    @given(st.integers(min_value=0, max_value=10**12))
    def test_sqrt_of_square_exact(self, n):
        assert num.generic_sqrt(n * n) == n

    @given(reals)
    def test_exactness_roundtrip(self, a):
        assume(not isinstance(a, float))
        inexact = num.generic_exact_to_inexact(a)
        assert isinstance(inexact, float)

    @given(finite_floats)
    def test_inexact_to_exact_roundtrip(self, x):
        exact = num.generic_inexact_to_exact(x)
        assert float(exact) == x
