"""Differential property: parallel compilation is invisible.

For seeded random module graphs (random DAG shapes mixing diamond and
chain dependencies, random mixes of values, functions, and macros),
``compile_graph(jobs=8, mode="thread")`` must produce **byte-identical**
``.zo`` artifacts and the same per-module export sets as ``jobs=1`` —
the scheduler may only change *when* modules compile, never *what* they
compile to. This is the determinism contract the shared artifact cache
rests on: a warm cache filled by a parallel build must be
indistinguishable from one filled serially.
"""

from __future__ import annotations

import glob
import hashlib
import os
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Runtime


def make_graph(root: str, seed: int) -> list[str]:
    """Write a random module DAG under ``root``, shaped by ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(3, 6)
    os.makedirs(root, exist_ok=True)
    paths = []
    for i in range(n):
        # random dependency shape: chains, diamonds, and fan-ins all occur
        k = rng.randint(0, min(i, 3))
        deps = sorted(rng.sample(range(i), k))
        requires = "\n".join(f'(require "m{j}.rkt")' for j in deps)
        terms = " ".join([str(rng.randint(1, 9))] + [f"v{j}" for j in deps])
        if rng.random() < 0.4:
            # dialect-bearing module: the infix rewrite runs pre-expansion
            # on a worker thread/process, and must be just as deterministic
            lang = "racket/infix"
            infix_terms = " + ".join(
                [str(rng.randint(1, 9))] + [f"v{j}" for j in deps]
            )
            parts = [
                f"#lang {lang}\n{requires}",
                f"(define v{i} {{{infix_terms}}})",
            ]
        else:
            lang = "racket"
            parts = [f"#lang {lang}\n{requires}",
                     f"(define v{i} (+ {terms}))"]
        if rng.random() < 0.5:
            parts.append(
                f"(define-syntax tw{i} (syntax-rules () [(_ e) (+ e e)]))"
            )
            parts.append(f"(define (f{i} x) (tw{i} (+ x v{i})))")
        else:
            parts.append(f"(define (f{i} x) (* x v{i}))")
        provides = [f"v{i}", f"f{i}"]
        if rng.random() < 0.3:
            parts.append(f"(define hidden{i} {rng.randint(10, 99)})")
        parts.append(f"(provide {' '.join(provides)})")
        path = os.path.join(root, f"m{i}.rkt")
        with open(path, "w", encoding="utf-8") as f:
            f.write("\n".join(parts) + "\n")
        paths.append(path)
    return paths


def digests(cache_dir: str) -> dict[str, str]:
    out = {}
    for path in glob.glob(os.path.join(cache_dir, "*.zo")):
        with open(path, "rb") as f:
            out[os.path.basename(path)] = hashlib.sha256(f.read()).hexdigest()
    return out


def compile_and_observe(paths: list[str], cache_dir: str, jobs: int) -> dict:
    """Compile the graph; return artifact digests and per-module exports."""
    mode = "thread" if jobs > 1 else "serial"
    with Runtime(cache_dir=cache_dir) as rt:
        report = rt.compile_graph(paths, jobs=jobs, mode=mode)
        assert report.ok, report.errors
        exports = {
            os.path.basename(path): sorted(
                rt.registry.compiled[rt.registry.register_file(path)].exports
            )
            for path in paths
        }
    return {"digests": digests(cache_dir), "exports": exports}


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parallel_compile_is_byte_identical_to_serial(seed, tmp_path_factory):
    base = tmp_path_factory.mktemp(f"prop-parallel-{seed}")
    paths = make_graph(str(base / "src"), seed)

    serial = compile_and_observe(paths, str(base / "serial"), jobs=1)
    parallel = compile_and_observe(paths, str(base / "parallel"), jobs=8)

    # same modules → same artifact *bytes*, not merely equivalent ones
    assert parallel["digests"] == serial["digests"]
    assert len(serial["digests"]) == len(paths)
    # and the same visible surface: every module exports the same names
    assert parallel["exports"] == serial["exports"]


def test_dialect_stack_changes_cache_key(tmp_path):
    """Two modules identical in path and source but compiled under different
    dialect stacks must never share a cached artifact."""
    with Runtime(cache_dir=str(tmp_path / "cache")) as rt:
        reg = rt.registry
        # the cache key decorates the spec with every dialect's name@version
        assert reg.cache_lang_key("racket") == "racket"
        assert reg.cache_lang_key("racket+infix") == "racket+infix[infix@1]"
        assert reg.cache_lang_key("racket/infix") == "racket/infix[infix@1]"
        # the decorated key is part of the artifact filename stem, so the
        # stacks land at different files for the same path and source hash
        plain = rt.cache.artifact_path(
            "m.rkt", reg.cache_lang_key("racket"), "h" * 40
        )
        stacked = rt.cache.artifact_path(
            "m.rkt", reg.cache_lang_key("racket+infix"), "h" * 40
        )
        assert plain != stacked
