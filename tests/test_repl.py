"""Tests for the REPL tool."""

from __future__ import annotations

import os
from io import StringIO

import pytest

from repro.tools.repl import Repl


def drive(*inputs: str, language: str = "racket") -> str:
    repl = Repl(language)
    stdin = StringIO("\n".join(inputs) + "\n")
    stdout = StringIO()
    repl.run(stdin=stdin, stdout=stdout)
    return stdout.getvalue()


class TestRepl:
    def test_expression_prints_value(self):
        assert "3\n" in drive("(+ 1 2)")

    def test_definitions_persist(self):
        out = drive("(define x 10)", "(* x x)")
        assert "100\n" in out

    def test_function_definition_and_use(self):
        out = drive("(define (square n) (* n n))", "(square 12)")
        assert "144\n" in out

    def test_macro_definition_persists(self):
        out = drive(
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))",
            "(twice (display 'hi))",
        )
        assert "hihi" in out

    def test_error_does_not_lose_state(self):
        out = drive("(define y 7)", "(car '())", "(+ y 1)")
        assert "error:" in out
        assert "8\n" in out

    def test_void_results_not_printed(self):
        out = drive("(void)")
        assert out.count("repro>") == 2  # prompt before input + final prompt
        assert "#<void>" not in out

    def test_side_effects_not_repeated(self):
        # each input re-runs the accumulated module; output diffing must
        # show each effect only once
        out = drive('(display "once!")', "(+ 1 1)")
        assert out.count("once!") == 1

    def test_typed_language_repl(self):
        out = drive("(define x : Integer 4)", "(+ x 1)", language="typed")
        assert "5\n" in out

    def test_typed_repl_rejects_type_errors_without_losing_state(self):
        out = drive(
            "(define x : Integer 4)",
            "(define y : Integer 1.5)",
            "(+ x 1)",
            language="typed",
        )
        assert "error:" in out
        assert "5\n" in out

    def test_empty_input_ignored(self):
        out = drive("", "(+ 2 2)")
        assert "4\n" in out


class TestReplMetaCommands:
    def test_help_lists_commands(self):
        out = drive(",help")
        assert ",stats" in out
        assert ",trace" in out

    def test_unknown_meta_command(self):
        out = drive(",bogus")
        assert "unknown meta-command ,bogus" in out

    def test_stats_shows_counters(self):
        out = drive("(+ 1 2)", ",stats")
        assert "expansion_steps" in out
        assert "generic_dispatches" in out
        # per-macro attribution rides along (satellite: expansion_by_macro)
        assert "expansion steps by macro:" in out

    def test_stats_reset(self):
        repl = Repl()
        repl.forms.append("(define (%repl-show v) (displayln v))")
        repl.eval_input("(+ 1 2)")
        assert repl.runtime.stats.expansion_steps > 0
        out = repl.eval_input(",stats reset")
        assert "stats reset" in out
        assert repl.runtime.stats.expansion_steps == 0

    def test_trace_before_any_eval(self):
        out = drive(",trace")
        assert "nothing evaluated yet" in out

    def test_backend_shows_active(self):
        out = drive(",backend")
        default = os.environ.get("REPRO_BACKEND", "interp")
        assert f"backend: {default}" in out

    def test_backend_switch_keeps_definitions(self):
        """,backend pyc: the next input re-instantiates the accumulated
        module in a fresh namespace under the new backend."""
        repl = Repl()
        repl.forms.append("(define (%repl-show v) (displayln v))")
        repl.eval_input("(define (sq x) (* x x))")
        out = repl.eval_input(",backend pyc")
        assert "backend: pyc" in out
        assert repl.eval_input("(sq 7)").strip() == "49"
        # the input really ran under pyc: codegen + link were charged
        assert repl.runtime.stats.pyc_codegens > 0
        assert repl.runtime.stats.pyc_links > 0
        # and back again, state intact
        assert "backend: interp" in repl.eval_input(",backend interp")
        assert repl.eval_input("(sq 8)").strip() == "64"

    def test_backend_rejects_unknown(self):
        out = drive(",backend bogus")
        assert "usage: ,backend" in out

    def test_stats_attributes_time_to_backend_phases(self):
        repl = Repl(backend="pyc")
        repl.forms.append("(define (%repl-show v) (displayln v))")
        repl.eval_input("(+ 1 2)")
        out = repl.eval_input(",stats")
        assert "time by phase (backend: pyc):" in out
        assert "pyc-codegen" in out
        assert "* = pyc backend's own phases" in out

    def test_trace_shows_last_input_macro_steps(self):
        repl = Repl()
        repl.forms.append("(define (%repl-show v) (displayln v))")
        repl.eval_input(
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))"
        )
        repl.eval_input("(twice (display 'hi))")
        out = repl.eval_input(",trace")
        assert "twice" in out
        # the full stepper renders input/output syntax per step
        assert "in:" in out and "out:" in out
        # steps of *earlier* inputs are filtered out of the headline list
        steps_section = out.split("optimization coach")[0]
        assert "define-syntax" not in steps_section.split("twice")[0]

    def test_trace_shows_coach_events_for_typed_input(self):
        repl = Repl("typed")
        repl.forms.append(
            "(define (%repl-show [v : Any]) : Void"
            " (if (void? v) (void) (displayln v)))"
        )
        repl.eval_input("(define (f [x : Float]) : Float (* x x))")
        out = repl.eval_input(",trace")
        assert "optimization coach:" in out
        assert "unsafe-fl*" in out


class TestMiscForms:
    def test_with_handlers_catches(self, run):
        assert run(
            """#lang racket
(displayln (with-handlers ([exn? (lambda (e) 'caught)])
  (error "boom")))"""
        ) == "caught\n"

    def test_with_handlers_passes_exn(self, run):
        assert run(
            """#lang racket
(displayln (with-handlers ([exn? exn-message])
  (error "the message")))"""
        ) == "the message\n"

    def test_with_handlers_no_error(self, run):
        assert run(
            "#lang racket\n(displayln (with-handlers ([exn? (lambda (e) 'no)]) 42))"
        ) == "42\n"

    def test_with_handlers_reraises_unmatched(self, run):
        from repro.errors import RuntimeReproError

        with pytest.raises(RuntimeReproError):
            run(
                """#lang racket
(with-handlers ([(lambda (e) #f) (lambda (e) 'never)])
  (error "still raised"))"""
            )

    def test_raise_of_exn_value(self, run):
        assert run(
            """#lang racket
(displayln (with-handlers ([exn? exn-message])
  (raise (with-handlers ([exn? (lambda (e) e)]) (error "wrapped")))))"""
        ) == "wrapped\n"

    def test_time_returns_value(self, run):
        out = run("#lang racket\n(displayln (time (+ 20 22)))")
        assert out.startswith("cpu time:")
        assert out.endswith("42\n")
