"""Tests for §5 (modular typed programs) and §6 (safe cross-module
integration): the heart of the paper's contribution."""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation, TypeCheckError
from repro.runtime.stats import STATS

SERVER = """#lang simple-type
(define (add-5 [x : Integer]) : Integer (+ x 5))
(provide add-5)
"""


class TestTypedToTyped:
    def test_types_persist_across_modules(self, rt):
        """§5's example: server compiled first, client sees add-5's type."""
        rt.register_module("server", SERVER)
        rt.register_module(
            "client",
            "#lang simple-type\n(require server)\n(displayln (add-5 7))",
        )
        assert rt.run("client") == "12\n"

    def test_typed_client_misuse_is_a_static_error(self, rt):
        rt.register_module("server", SERVER)
        rt.register_module(
            "client", "#lang simple-type\n(require server)\n(add-5 1.5)"
        )
        with pytest.raises(TypeCheckError):
            rt.compile("client")

    def test_no_contract_checks_between_typed_modules(self, rt):
        """§6: "communication between typed modules should not involve extra
        contract checks, since these invariants are enforced statically"."""
        rt.register_module("server", SERVER)
        rt.register_module(
            "client",
            "#lang simple-type\n(require server)\n(displayln (add-5 7))",
        )
        rt.compile("client")
        STATS.reset()
        rt.run("client")
        assert STATS.contract_checks == 0

    def test_type_reexported_through_chain(self, rt):
        rt.register_module("server", SERVER)
        rt.register_module(
            "middle",
            """#lang simple-type
(require server)
(define (add-10 [x : Integer]) : Integer (add-5 (add-5 x)))
(provide add-10)""",
        )
        rt.register_module(
            "client", "#lang simple-type\n(require middle)\n(displayln (add-10 1))"
        )
        assert rt.run("client") == "11\n"


class TestTypedToUntyped:
    def test_safe_use_from_untyped(self, rt):
        rt.register_module("server", SERVER)
        rt.register_module(
            "client", "#lang racket\n(require server)\n(displayln (add-5 12))"
        )
        assert rt.run("client") == "17\n"

    def test_unsafe_use_trapped_by_contract(self, rt):
        """§3.2: '(add-5 "bad") ;; unsafe use' must fail dynamically."""
        rt.register_module("server", SERVER)
        rt.register_module(
            "client", '#lang racket\n(require server)\n(add-5 "bad")'
        )
        with pytest.raises(ContractViolation):
            rt.run("client")

    def test_untyped_calls_pay_contract_checks(self, rt):
        rt.register_module("server", SERVER)
        rt.register_module(
            "client", "#lang racket\n(require server)\n(add-5 1)\n(add-5 2)"
        )
        rt.compile("client")
        STATS.reset()
        rt.run("client")
        assert STATS.contract_checks > 0

    def test_untyped_can_pass_typed_function_around(self, rt):
        rt.register_module("server", SERVER)
        rt.register_module(
            "client",
            "#lang racket\n(require server)\n(displayln (map add-5 (list 1 2)))",
        )
        assert rt.run("client") == "(6 7)\n"

    def test_typed_context_flag_unreachable_from_untyped(self, rt):
        """§6.2: the flag "is accessible only from the implementation of the
        simple-type language" — untyped compilations always see #f."""
        rt.register_module("server", SERVER)
        # this untyped module compiles *after* a typed module set the flag
        # in ITS OWN compilation store; the fresh store per compilation
        # keeps this compilation's flag #f
        rt.compile("server")
        rt.register_module(
            "probe",
            """#lang racket
(require server)
(define-syntax (flag-value stx)
  (datum->syntax stx (list (quote-syntax quote)
                           (datum->syntax stx (typed-context?)))))
(displayln (flag-value))""",
        )
        assert rt.run("probe") == "#f\n"


class TestRequireTyped:
    UNTYPED_LIB = """#lang racket
(define (shout s) (string-upcase s))
(define (add-pair p) (+ (car p) (cdr p)))
(define (liar x) 'not-a-string)
(provide shout add-pair liar)
"""

    def test_fig4_import_and_use(self, rt):
        rt.register_module("lib", self.UNTYPED_LIB)
        rt.register_module(
            "typed",
            """#lang simple-type
(require/typed lib [shout (String -> String)])
(displayln (shout "hi"))""",
        )
        assert rt.run("typed") == "HI\n"

    def test_static_error_if_misused_in_typed_code(self, rt):
        """fig. 4: "getting a static type error if md5 is applied to a
        number, for example"."""
        rt.register_module("lib", self.UNTYPED_LIB)
        rt.register_module(
            "typed",
            """#lang simple-type
(require/typed lib [shout (String -> String)])
(shout 42)""",
        )
        with pytest.raises(TypeCheckError):
            rt.compile("typed")

    def test_untyped_lie_caught_dynamically_and_blamed(self, rt):
        """fig. 4: "if the library fails to return a byte string value, a
        dynamic contract error is produced"."""
        rt.register_module("lib", self.UNTYPED_LIB)
        rt.register_module(
            "typed",
            """#lang simple-type
(require/typed lib [liar (String -> String)])
(displayln (liar "x"))""",
        )
        with pytest.raises(ContractViolation) as exc:
            rt.run("typed")
        assert exc.value.blame == "lib"

    def test_unsafe_identifier_is_macro_private(self, rt):
        from repro.errors import UnboundIdentifierError

        rt.register_module("lib", self.UNTYPED_LIB)
        rt.register_module(
            "typed",
            """#lang simple-type
(require/typed lib [shout (String -> String)])
(displayln unsafe-shout)""",
        )
        with pytest.raises((UnboundIdentifierError, TypeCheckError)):
            rt.compile("typed")

    def test_multiple_clauses(self, rt):
        rt.register_module("lib", self.UNTYPED_LIB)
        rt.register_module(
            "typed",
            """#lang simple-type
(require/typed lib
  [shout (String -> String)])
(require/typed lib
  [add-pair ((Pairof Integer Integer) -> Integer)])
(displayln (shout "ok"))""",
        )
        assert rt.run("typed") == "OK\n"


class TestMixedPrograms:
    def test_sandwich(self, rt):
        """untyped -> typed -> untyped: contracts at each boundary crossing"""
        rt.register_module(
            "bottom", "#lang racket\n(define (base x) (* x 2))\n(provide base)"
        )
        rt.register_module(
            "middle",
            """#lang simple-type
(require/typed bottom [base (Integer -> Integer)])
(define (stacked [x : Integer]) : Integer (+ 1 (base x)))
(provide stacked)""",
        )
        rt.register_module(
            "top", "#lang racket\n(require middle)\n(displayln (stacked 10))"
        )
        assert rt.run("top") == "21\n"

    def test_both_typed_and_untyped_clients_of_one_server(self, rt):
        rt.register_module("server", SERVER)
        rt.register_module(
            "tclient",
            "#lang simple-type\n(require server)\n(define r : Integer (add-5 1))\n(provide r)",
        )
        rt.register_module(
            "main",
            """#lang racket
(require server)
(require tclient)
(displayln (list r (add-5 2)))""",
        )
        assert rt.run("main") == "(6 7)\n"


class TestMacroExportPrevention:
    def test_typed_modules_may_not_export_macros(self, rt):
        """§6.3: "Typed Racket currently prevents macros defined in typed
        modules from escaping into untyped modules"."""
        from repro.errors import SyntaxExpansionError

        rt.register_module(
            "typed-macros",
            """#lang simple-type
(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))
(provide twice)""",
        )
        with pytest.raises(SyntaxExpansionError, match="macros may not be provided"):
            rt.compile("typed-macros")

    def test_typed_modules_may_still_define_and_use_macros(self, rt):
        rt.register_module(
            "typed-internal-macro",
            """#lang simple-type
(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))
(define x : Integer 1)
(twice (displayln x))""",
        )
        assert rt.run("typed-internal-macro") == "1\n1\n"
