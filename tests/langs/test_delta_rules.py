"""Systematic coverage of the typed language's delta rules — the custom
typing rules for the kernel's variadic / polymorphic operations."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError


def check(run, expr: str, type_name: str, value: str) -> None:
    out = run(
        f"#lang typed\n(define result : {type_name} {expr})\n(displayln result)"
    )
    assert out == value + "\n"


class TestNumericDeltas:
    def test_add_integer(self, run):
        check(run, "(+ 1 2 3)", "Integer", "6")

    def test_add_float(self, run):
        check(run, "(+ 1.0 2.0 3.5)", "Float", "6.5")

    def test_add_mixed_is_number(self, run):
        check(run, "(+ 1 2.5)", "Number", "3.5")

    def test_add_float_complex(self, run):
        check(run, "(+ 1.0+1.0i 2.0+0.5i)", "Float-Complex", "3.0+1.5i")

    def test_nullary_add(self, run):
        check(run, "(+)", "Integer", "0")

    def test_unary_minus(self, run):
        check(run, "(- 5)", "Integer", "-5")

    def test_div_integers_is_real(self, run):
        check(run, "(/ 3 4)", "Real", "3/4")

    def test_div_floats_is_float(self, run):
        check(run, "(/ 1.0 4.0)", "Float", "0.25")

    def test_add_rejects_non_number(self, run):
        with pytest.raises(TypeCheckError):
            run('#lang typed\n(+ 1 "two")')

    def test_comparison_chains(self, run):
        check(run, "(< 1 2 3)", "Boolean", "#t")

    def test_comparison_rejects_complex(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(< 1.0+1.0i 2)")

    def test_min_max_reject_complex(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(min 1.0+1.0i 2.0+2.0i)")

    def test_min_preserves_integer(self, run):
        check(run, "(min 3 1 2)", "Integer", "1")


class TestListDeltas:
    def test_cons_builds_pair_type(self, run):
        check(run, '(cons 1 "x")', "(Pairof Integer String)", "(1 . x)")

    def test_list_builds_fixed_type(self, run):
        check(run, '(list 1 "a" #t)', "(List Integer String Boolean)", "(1 a #t)")

    def test_empty_list_is_null(self, run):
        check(run, "(list)", "Null", "()")

    def test_car_on_pairof(self, run):
        check(run, "(car (cons 1 2.0))", "Integer", "1")

    def test_cdr_on_pairof(self, run):
        check(run, "(cdr (cons 1 2.0))", "Float", "2.0")

    def test_append_joins_element_types(self, run):
        check(
            run,
            '(append (list 1) (list "a"))',
            "(Listof (U Integer String))",
            "(1 a)",
        )

    def test_reverse_preserves(self, run):
        check(run, "(reverse (list 1 2 3))", "(Listof Integer)", "(3 2 1)")

    def test_length_is_integer(self, run):
        check(run, "(length (list 1 2))", "Integer", "2")

    def test_length_rejects_non_list(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(length 5)")

    def test_list_ref(self, run):
        check(run, "(list-ref (list 1.5 2.5) 1)", "Float", "2.5")

    def test_list_ref_index_must_be_integer(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(list-ref (list 1) 0.5)")

    def test_member_returns_union(self, run):
        check(
            run,
            "(member 2 (list 1 2 3))",
            "(U Boolean (Listof Integer))",
            "(2 3)",
        )

    def test_filter(self, run):
        check(run, "(filter even? (list 1 2 3 4))", "(Listof Integer)", "(2 4)")

    def test_foldl_result_from_function(self, run):
        check(run, "(foldl + 0 (list 1 2 3))", "Integer", "6")

    def test_sort(self, run):
        check(run, "(sort (list 3 1 2) <)", "(Listof Integer)", "(1 2 3)")

    def test_build_list(self, run):
        check(run, "(build-list 3 add1)", "(Listof Integer)", "(1 2 3)")

    def test_map_element_mismatch_rejected(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(: shout (String -> String))
(define (shout s) s)
(map shout (list 1 2))"""
            )


class TestVectorDeltas:
    def test_vector_literal_joins(self, run):
        check(run, "(vector-ref (vector 1 2) 0)", "Integer", "1")

    def test_make_vector_type_from_fill(self, run):
        check(run, "(vector-ref (make-vector 2 0.5) 1)", "Float", "0.5")

    def test_vector_set_checked(self, run):
        with pytest.raises(TypeCheckError):
            run('#lang typed\n(vector-set! (make-vector 1 0) 0 "s")')

    def test_vector_length(self, run):
        check(run, "(vector-length (vector 1 2 3))", "Integer", "3")

    def test_vector_roundtrips(self, run):
        check(run, "(vector->list (vector 1 2))", "(Listof Integer)", "(1 2)")
        check(run, "(vector-ref (list->vector (list 9)) 0)", "Integer", "9")

    def test_build_vector(self, run):
        check(run, "(vector-ref (build-vector 3 add1) 2)", "Integer", "3")

    def test_vector_ops_reject_non_vectors(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(vector-ref (list 1) 0)")


class TestStringAndOutputDeltas:
    def test_string_append(self, run):
        check(run, '(string-append "a" "b" "c")', "String", "abc")

    def test_string_append_rejects_non_strings(self, run):
        with pytest.raises(TypeCheckError):
            run('#lang typed\n(string-append "a" 1)')

    def test_printf_requires_format_string(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(printf 42)")

    def test_printf_accepts_any_args(self, run):
        out = run('#lang typed\n(printf "~a ~a~n" 1 "two")')
        assert out == "1 two\n"

    def test_format_returns_string(self, run):
        check(run, '(format "~a!" 9)', "String", "9!")

    def test_error_is_bottom(self, run):
        # error's Nothing type fits anywhere — both branches typecheck
        check(run, '(if (< 1 2) 5 (error "no"))', "Integer", "5")

    def test_predicates_return_boolean(self, run):
        check(run, "(null? (list))", "Boolean", "#t")
        check(run, "(equal? 1 2)", "Boolean", "#f")
        check(run, "(not #f)", "Boolean", "#t")
