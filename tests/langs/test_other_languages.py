"""Tests for the count and lazy demonstration languages (§1, §2.3)."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeReproError


class TestCount:
    def test_paper_example_verbatim(self, run):
        # §2.3: prints "Found 2 expressions.*3*1"
        assert run(
            """#lang count
(printf "*~a" (+ 1 2))
(printf "*~a" (- 4 3))"""
        ) == "Found 2 expressions.*3*1"

    def test_counts_before_running(self, run):
        assert run("#lang count\n(displayln 'only-one)") == (
            "Found 1 expressions.only-one\n"
        )

    def test_empty_module(self, run):
        assert run("#lang count\n") == "Found 0 expressions."

    def test_definitions_count_as_expressions(self, run):
        out = run("#lang count\n(define x 1)\n(displayln x)")
        assert out.startswith("Found 2 expressions.")

    def test_rest_of_racket_available(self, run):
        out = run("#lang count\n(displayln (map add1 (list 1 2)))")
        assert out == "Found 1 expressions.(2 3)\n"


class TestLazy:
    def test_unused_arguments_not_evaluated(self, run):
        assert run(
            """#lang lazy
(define (pick a b) a)
(displayln (pick 'used (error "must not run")))"""
        ) == "used\n"

    def test_forced_when_needed(self, run):
        with pytest.raises(RuntimeReproError, match="needed"):
            run(
                """#lang lazy
(define (pick a b) b)
(displayln (pick 1 (error "needed")))"""
            )

    def test_if_forces_test(self, run):
        assert run("#lang lazy\n(displayln (if (< 1 2) 'yes 'no))") == "yes\n"

    def test_infinite_stream(self, run):
        assert run(
            """#lang lazy
(define (nats-from n) (cons n (nats-from (+ n 1))))
(define (take lst n)
  (if (= n 0) '() (cons (car lst) (take (cdr lst) (- n 1)))))
(define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
(displayln (sum (take (nats-from 1) 100)))"""
        ) == "5050\n"

    def test_memoization(self, run):
        # the side effect runs once even though the value is used twice
        assert run(
            """#lang lazy
(define (use-twice x) (+ x x))
(displayln (use-twice (begin (display "eval!") 21)))"""
        ) == "eval!42\n"

    def test_same_program_diverges_or_not_by_language(self, rt):
        """The same module text behaves differently under racket vs lazy —
        language choice is per-module (§2.3)."""
        source_body = """
(define (pick a b) a)
(define result (pick 'fine (error "strict blows up")))
(displayln result)"""
        rt.register_module("strict-version", "#lang racket" + source_body)
        rt.register_module("lazy-version", "#lang lazy" + source_body)
        with pytest.raises(RuntimeReproError):
            rt.run("strict-version")
        assert rt.run("lazy-version") == "fine\n"
