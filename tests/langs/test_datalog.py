"""Tests for the datalog language and its engine."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeReproError, SyntaxExpansionError
from repro.langs.datalog.engine import Database, Rule, is_variable, unify_atom
from repro.runtime.values import Symbol


def sym(name: str) -> Symbol:
    return Symbol(name)


class TestEngine:
    def test_variables_are_capitalized_symbols(self):
        assert is_variable(sym("X"))
        assert is_variable(sym("Who"))
        assert not is_variable(sym("alice"))
        assert not is_variable(42)

    def test_unify_constant_match(self):
        assert unify_atom(("p", sym("a")), ("p", sym("a")), {}) == {}

    def test_unify_constant_mismatch(self):
        assert unify_atom(("p", sym("a")), ("p", sym("b")), {}) is None

    def test_unify_predicate_mismatch(self):
        assert unify_atom(("p", sym("a")), ("q", sym("a")), {}) is None

    def test_unify_binds_variable(self):
        bindings = unify_atom(("p", sym("X")), ("p", sym("a")), {})
        assert bindings == {"X": sym("a")}

    def test_unify_respects_existing_binding(self):
        assert unify_atom(("p", sym("X")), ("p", sym("b")), {"X": sym("a")}) is None

    def test_repeated_variable(self):
        assert unify_atom(("p", sym("X"), sym("X")), ("p", sym("a"), sym("a")), {}) == {
            "X": sym("a")
        }
        assert (
            unify_atom(("p", sym("X"), sym("X")), ("p", sym("a"), sym("b")), {}) is None
        )

    def test_fixpoint_transitive_closure(self):
        db = Database()
        db.assert_fact(("edge", 1, 2))
        db.assert_fact(("edge", 2, 3))
        db.assert_fact(("edge", 3, 4))
        db.assert_rule(Rule(("path", sym("X"), sym("Y")), (("edge", sym("X"), sym("Y")),)))
        db.assert_rule(
            Rule(
                ("path", sym("X"), sym("Z")),
                (("edge", sym("X"), sym("Y")), ("path", sym("Y"), sym("Z"))),
            )
        )
        assert len(db.query(("path", 1, sym("W")))) == 3

    def test_non_ground_fact_rejected(self):
        db = Database()
        with pytest.raises(RuntimeReproError):
            db.assert_fact(("p", sym("X")))

    def test_unsafe_rule_rejected(self):
        db = Database()
        with pytest.raises(RuntimeReproError, match="unsafe"):
            db.assert_rule(Rule(("p", sym("X")), (("q", sym("Y")),)))

    def test_numbers_and_strings_as_constants(self):
        db = Database()
        db.assert_fact(("age", sym("alice"), 30))
        db.assert_fact(("name", sym("alice"), "Alice"))
        assert db.query(("age", sym("alice"), 30)) == [{}]
        assert db.query(("age", sym("alice"), 31)) == []


class TestLanguage:
    def test_ancestor_program(self, run):
        assert run(
            """#lang datalog
(! (parent alice bob))
(! (parent bob carol))
(:- (ancestor X Y) (parent X Y))
(:- (ancestor X Z) (parent X Y) (ancestor Y Z))
(? (ancestor alice Who))"""
        ) == "ancestor(alice, bob).\nancestor(alice, carol).\n"

    def test_query_with_no_answers_prints_nothing(self, run):
        assert run(
            "#lang datalog\n(! (p a))\n(? (q X))"
        ) == ""

    def test_ground_query(self, run):
        assert run(
            "#lang datalog\n(! (p a))\n(? (p a))\n(? (p b))"
        ) == "p(a).\n"

    def test_statement_order_is_irrelevant_for_rules(self, run):
        # queries see the saturated database regardless of rule position
        assert run(
            """#lang datalog
(:- (q X) (p X))
(! (p one))
(? (q X))"""
        ) == "q(one).\n"

    def test_bad_statement_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang datalog\n(frobnicate (p a))")

    def test_independent_module_databases(self, rt):
        rt.register_module("d1", "#lang datalog\n(! (p a))\n(? (p X))")
        rt.register_module("d2", "#lang datalog\n(! (p b))\n(? (p X))")
        assert rt.run("d1") == "p(a).\n"
        assert rt.run("d2") == "p(b).\n"

    def test_same_graph_two_languages(self, rt):
        """The §2.3 point: the language is per-module; a racket module and a
        datalog module coexist on one platform."""
        assert rt.run_source("#lang datalog\n(! (e 1 2))\n(? (e X Y))") == "e(1, 2).\n"
        assert rt.run_source("#lang racket\n(displayln 'still-racket)") == "still-racket\n"
