"""Tests for the ``simple-type`` language — the paper's §4 system."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError


class TestPaperExamples:
    def test_section_4_1_module(self, run):
        # the module from §4.1, verbatim
        assert run(
            """#lang simple-type
(define x : Integer 1)
(define y : Integer 2)
(define (f [z : Integer]) : Integer (* x (+ y z)))
(displayln (f 0))"""
        ) == "2\n"

    def test_section_4_1_type_error(self, run):
        # "(define w : Integer 3.7)  =>  typecheck: wrong type in: 3.7"
        with pytest.raises(TypeCheckError, match="wrong type"):
            run("#lang simple-type\n(define w : Integer 3.7)")

    def test_modules_with_type_errors_are_not_executable(self, rt):
        rt.register_module("bad", "#lang simple-type\n(define w : Integer 3.7)")
        with pytest.raises(TypeCheckError):
            rt.compile("bad")

    def test_define_colon_form(self, run):
        # §3.1's (define: x : Number 3)
        assert run(
            "#lang simple-type\n(define: x : Number 3)\n(displayln x)"
        ) == "3\n"

    def test_let_colon(self, run):
        # §3.1's let: rewrites into an annotated lambda application
        assert run(
            """#lang simple-type
(define x : Integer 5)
(displayln (let: ([y : Integer 2]) (+ x y)))"""
        ) == "7\n"

    def test_lambda_colon(self, run):
        assert run(
            "#lang simple-type\n(displayln ((lambda: ([x : Integer]) (* x x)) 6))"
        ) == "36\n"


class TestCheckerRules:
    def test_literals(self, run):
        assert run(
            """#lang simple-type
(define i : Integer 1)
(define f : Float 1.5)
(define n : Number 1/2)
(define b : Boolean #t)
(define s : String "hi")
(displayln 'ok)"""
        ) == "ok\n"

    def test_integer_is_a_number(self, run):
        assert run("#lang simple-type\n(define n : Number 3)\n(displayln n)") == "3\n"

    def test_number_is_not_an_integer(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang simple-type
(define n : Number 3)
(define i : Integer n)"""
            )

    def test_if_branches_must_agree(self, run):
        with pytest.raises(TypeCheckError, match="branches must agree"):
            run(
                """#lang simple-type
(define b : Boolean #t)
(define x : Number (if b 1 2.5))"""
            )

    def test_if_test_must_be_boolean(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang simple-type\n(define x : Integer (if 1 2 3))")

    def test_context_sensitive_application(self, run):
        # §3.2: checking (f 7) relies on contextual information about f
        assert run(
            """#lang simple-type
(define (f [z : Number]) : Number (sqrt (* 2.0 2.0)))
(displayln (f 7))"""
        ) == "2.0\n"

    def test_wrong_argument_type(self, run):
        with pytest.raises(TypeCheckError, match="wrong argument types|no matching case"):
            run(
                """#lang simple-type
(define (f [z : Integer]) : Integer z)
(f 1.5)"""
            )

    def test_wrong_argument_count(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang simple-type
(define (f [z : Integer]) : Integer z)
(f 1 2)"""
            )

    def test_applying_non_function(self, run):
        with pytest.raises(TypeCheckError, match="not a function type"):
            run("#lang simple-type\n(define x : Integer 1)\n(x 2)")

    def test_body_must_match_result_annotation(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang simple-type\n(define (f [x : Integer]) : Integer 1.5)")

    def test_unannotated_variable_rejected(self, run):
        with pytest.raises(TypeCheckError, match="untyped variable"):
            run("#lang simple-type\n(define x 1)\n(displayln x)")

    def test_functions_as_values(self, run):
        assert run(
            """#lang simple-type
(define (apply-twice [f : (Integer -> Integer)] [x : Integer]) : Integer
  (f (f x)))
(define (inc [n : Integer]) : Integer (+ n 1))
(displayln (apply-twice inc 5))"""
        ) == "7\n"

    def test_set_bang_checked(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang simple-type\n(define x : Integer 1)\n(set! x 2.5)")

    def test_set_bang_well_typed(self, run):
        assert run(
            "#lang simple-type\n(define x : Integer 1)\n(set! x 99)\n(displayln x)"
        ) == "99\n"

    def test_macros_reduce_to_core_before_checking(self, run):
        # `when`, `and` are macros; the checker sees only core forms
        assert run(
            """#lang simple-type
(define b : Boolean #f)
(displayln (if (and b b) 1 2))"""
        ) == "2\n"

    def test_arithmetic_overloads(self, run):
        assert run(
            """#lang simple-type
(define i : Integer (* 2 3))
(define f : Float (* 2.0 3.0))
(define n : Number (* 2 3.0))
(displayln i)
(displayln f)
(displayln n)"""
        ) == "6\n6.0\n6.0\n"

    def test_float_plus_integer_is_only_a_number(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang simple-type\n(define f : Float (+ 1 2.0))")


class TestTypeAnnotationProperty:
    def test_annotation_travels_as_syntax_property(self, rt):
        """§3.1: the type is out-of-band — host `define` behavior unchanged."""
        from repro.core.parse import core_form_of
        from repro.langs.simple_type.checker import TYPE_ANNOTATION_KEY

        rt.register_module("m", "#lang simple-type\n(define x : Integer 1)")
        rt.compile("m")
        # compile a module and inspect the expanded definition's binder
        # indirectly: the module compiled, so the property must have reached
        # the checker. Now verify the property mechanism directly:
        from repro.langs.simple_type.forms import annotate
        from repro.reader import read_string_one

        ident = annotate(read_string_one("x"), read_string_one("Integer"))
        assert ident.property_get(TYPE_ANNOTATION_KEY) is not None
