"""Tests for the type-driven optimizers (fig. 5 and §7.2)."""

from __future__ import annotations

import pytest

from repro.langs.typed import OPTIMIZER_CONFIG
from repro.langs.typed.optimizer import ALL_RULES
from repro.runtime.stats import STATS


@pytest.fixture(autouse=True)
def restore_optimizer_config():
    saved = dict(OPTIMIZER_CONFIG)
    saved_rules = set(OPTIMIZER_CONFIG["rules"])
    yield
    OPTIMIZER_CONFIG.update(saved)
    OPTIMIZER_CONFIG["rules"] = saved_rules


FLOAT_PROGRAM = """#lang typed
(define (hypot [x : Float] [y : Float]) : Float
  (sqrt (+ (* x x) (* y y))))
(displayln (hypot 3.0 4.0))
"""


class TestFloatSpecialization:
    def test_float_ops_become_unsafe(self, rt):
        rt.register_module("m", FLOAT_PROGRAM)
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "5.0\n"
        assert STATS.unsafe_ops > 0
        assert STATS.generic_dispatches == 0

    def test_simple_type_optimizer_equivalent(self, rt):
        rt.register_module(
            "m",
            """#lang simple-type
(define (prod [x : Float] [y : Float]) : Float (* x y))
(displayln (prod 2.0 4.0))""",
        )
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "8.0\n"
        assert STATS.unsafe_ops == 1
        assert STATS.generic_dispatches == 0

    def test_mixed_types_not_specialized(self, rt):
        # (+ Integer Float) stays generic: the optimizer only rewrites
        # when BOTH operands are proven Float
        rt.register_module(
            "m",
            """#lang typed
(define n : Number (+ 1 2.0))
(displayln n)""",
        )
        rt.compile("m")
        STATS.reset()
        rt.run("m")
        assert STATS.generic_dispatches >= 1


class TestFixnumSpecialization:
    def test_integer_loop_fully_specialized(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define (count [i : Integer] [acc : Integer]) : Integer
  (if (= i 0) acc (count (- i 1) (+ acc 1))))
(displayln (count 100 0))""",
        )
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "100\n"
        assert STATS.generic_dispatches == 0
        assert STATS.unsafe_ops == 301  # 100 iterations x (= - +) + final =


class TestPairAndVectorSpecialization:
    def test_pairof_access_skips_tag_checks(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define p : (Pairof Integer Integer) (cons 1 2))
(displayln (+ (car p) (cdr p)))""",
        )
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "3\n"
        assert STATS.tag_checks == 0

    def test_listof_access_keeps_tag_checks(self, rt):
        # car on (Listof T) cannot prove non-emptiness: tag check remains
        rt.register_module(
            "m",
            """#lang typed
(define xs : (Listof Integer) (list 1 2))
(displayln (car xs))""",
        )
        rt.compile("m")
        STATS.reset()
        rt.run("m")
        assert STATS.tag_checks >= 1

    def test_vector_ops_specialized(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define v : (Vectorof Float) (vector 1.0 2.0))
(vector-set! v 0 3.0)
(displayln (vector-ref v 0))""",
        )
        rt.compile("m")
        STATS.reset()
        rt.run("m")
        assert STATS.tag_checks == 0
        assert STATS.unsafe_ops >= 2


class TestComplexSpecialization:
    def test_float_complex_ops_specialized(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define (rotate [z : Float-Complex]) : Float-Complex (* z 0.0+1.0i))
(displayln (rotate 1.0+0.0i))""",
        )
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "0.0+1.0i\n"
        assert STATS.generic_dispatches == 0
        assert STATS.unsafe_ops >= 1

    def test_paper_count_loop(self, rt):
        # the §3.2 Float-Complex example, adapted
        rt.register_module(
            "m",
            """#lang typed
(: count-halvings (Float-Complex -> Integer))
(define (count-halvings f)
  (if (< (magnitude f) 0.001)
      0
      (add1 (count-halvings (/ f 2.0+2.0i)))))
(displayln (count-halvings 8.0+8.0i))""",
        )
        rt.compile("m")
        STATS.reset()
        out = rt.run("m")
        assert int(out) > 0
        assert STATS.generic_dispatches == 0


class TestOptimizerToggle:
    def test_disabled_optimizer_stays_generic(self, rt):
        OPTIMIZER_CONFIG["optimize"] = False
        rt.register_module("m", FLOAT_PROGRAM)
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "5.0\n"
        assert STATS.unsafe_ops == 0
        assert STATS.generic_dispatches > 0

    def test_rule_group_ablation(self, rt):
        OPTIMIZER_CONFIG["rules"] = {"fixnum"}  # floats NOT specialized
        rt.register_module("m", FLOAT_PROGRAM)
        rt.compile("m")
        STATS.reset()
        assert rt.run("m") == "5.0\n"
        assert STATS.unsafe_ops == 0
        assert STATS.generic_dispatches > 0

    def test_optimized_and_unoptimized_agree(self, rt):
        program = """#lang typed
(define (body [x : Float]) : Float
  (+ (* x 2.0) (/ 1.0 (max x 0.5))))
(displayln (body 1.25))
"""
        OPTIMIZER_CONFIG["optimize"] = True
        rt.register_module("opt", program)
        opt_out = rt.run("opt")
        OPTIMIZER_CONFIG["optimize"] = False
        rt.register_module("noopt", program)
        noopt_out = rt.run("noopt")
        assert opt_out == noopt_out


class TestOptimizationIsSemanticsPreserving:
    def test_division_by_zero_edge(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define (inv [x : Float]) : Float (/ 1.0 x))
(displayln (inv 0.0))
(displayln (inv -0.0))""",
        )
        assert rt.run("m") == "+inf.0\n-inf.0\n"

    def test_float_comparisons(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define (cmp [a : Float] [b : Float]) : Boolean (< a b))
(displayln (cmp 1.0 2.0))
(displayln (cmp 2.0 1.0))""",
        )
        assert rt.run("m") == "#t\n#f\n"
