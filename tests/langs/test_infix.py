"""Tests for ``#lang racket/infix``: user-defined infix/mixfix operators.

Covers: the default operator table (precedence and associativity),
``define-op`` declarations (precedence levels, right-associativity,
rewrite targets including user macros — hygienic by reuse of the declared
identifier), the ``:=`` and ``? :`` mixfix forms, D003/D004 diagnostics
with pre-rewrite srclocs and multi-error collection, quote opacity,
brace neutrality in other languages, and backend agreement.
"""

from __future__ import annotations

import pytest

from repro import Runtime
from repro.errors import CompilationFailed, DialectError

BACKENDS = ("interp", "pyc")

CALC = """#lang racket/infix
(define-op ^ 8 right expt)
(displayln {1 + 2 * 3})
(displayln {{1 + 2} * 3})
(displayln {10 - 3 - 2})
(displayln {2 ^ 3 ^ 2})
(displayln {1 + 2 < 4 and 3 * 3 = 9})
{x := 10}
(displayln {x > 5 ? "big" : "small"})
{(double n) := {n * 2}}
(displayln (double 21))
"""


def run(source, path="<m>", **kwargs):
    with Runtime(cache=False, **kwargs) as rt:
        return rt.run_source(source, path)


class TestPrecedence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_calculator_module(self, backend):
        out = run(CALC, backend=backend)
        assert out == "7\n9\n5\n512\n#t\nbig\n42\n"

    def test_multiplication_binds_tighter(self):
        assert run("#lang racket/infix\n(displayln {2 + 3 * 4})\n") == "14\n"

    def test_left_associativity(self):
        assert run("#lang racket/infix\n(displayln {100 / 5 / 2})\n") == "10\n"

    def test_comparison_below_arithmetic(self):
        src = "#lang racket/infix\n(displayln {1 + 1 = 2})\n"
        assert run(src) == "#t\n"

    def test_and_or_lowest(self):
        src = "#lang racket/infix\n(displayln {1 = 2 or 2 = 2 and 3 = 3})\n"
        assert run(src) == "#t\n"

    def test_single_operand_brace(self):
        assert run("#lang racket/infix\n(displayln {42})\n") == "42\n"

    def test_nested_braces_rewrite_innermost_first(self):
        src = "#lang racket/infix\n(displayln {{2 + 3} * {4 - 1}})\n"
        assert run(src) == "15\n"

    def test_braces_inside_ordinary_forms(self):
        src = "#lang racket/infix\n(define (f a b) (list {a + b} {a * b}))\n(displayln (f 2 3))\n"
        assert run(src) == "(5 6)\n"


class TestDefineOp:
    def test_right_associative_operator(self):
        src = "#lang racket/infix\n(define-op ^ 8 right expt)\n(displayln {2 ^ 3 ^ 2})\n"
        assert run(src) == "512\n"

    def test_operator_without_target_names_itself(self):
        src = """#lang racket/infix
(define (dot a b) (+ (* (car a) (car b)) (* (cdr a) (cdr b))))
(define-op dot 5 left)
(displayln {(cons 1 2) dot (cons 3 4)})
"""
        assert run(src) == "11\n"

    def test_target_may_be_a_user_macro(self):
        # the rewrite reuses the declaration's target identifier verbatim,
        # so it can resolve to a macro — binding is decided where the user
        # wrote the name, not by the dialect
        src = """#lang racket/infix
(define-syntax plus3 (syntax-rules () [(_ a b) (+ a b 3)]))
(define-op +++ 4 left plus3)
(displayln {10 +++ 20})
"""
        assert run(src) == "33\n"

    def test_redeclaring_overrides_precedence(self):
        src = """#lang racket/infix
(define-op + 9 left)
(displayln {2 + 3 * 4})
"""
        # + now binds tighter than *
        assert run(src) == "20\n"


class TestMixfix:
    def test_walrus_defines_a_value(self):
        src = "#lang racket/infix\n{y := 2 + 3}\n(displayln y)\n"
        assert run(src) == "5\n"

    def test_walrus_defines_a_function(self):
        src = "#lang racket/infix\n{(square n) := {n * n}}\n(displayln (square 9))\n"
        assert run(src) == "81\n"

    def test_ternary(self):
        src = "#lang racket/infix\n(displayln {1 < 2 ? 'yes : 'no})\n"
        assert run(src) == "yes\n"

    def test_nested_ternary_in_alternative(self):
        src = """#lang racket/infix
(define (sign n) {n < 0 ? -1 : n = 0 ? 0 : 1})
(displayln (list (sign -9) (sign 0) (sign 4)))
"""
        assert run(src) == "(-1 0 1)\n"


class TestOpacity:
    def test_quoted_braces_stay_data(self):
        src = "#lang racket/infix\n(displayln '{1 + 2})\n"
        assert run(src) == "(1 + 2)\n"

    def test_quasiquoted_braces_stay_data(self):
        src = "#lang racket/infix\n(displayln `{3 * 4})\n"
        assert run(src) == "(3 * 4)\n"

    def test_braces_are_plain_parens_in_other_languages(self):
        src = "#lang racket\n(displayln {+ 1 2})\n"
        assert run(src) == "3\n"

    def test_brackets_unchanged_in_infix_lang(self):
        src = "#lang racket/infix\n(displayln (let ([a 40] [b 2]) {a + b}))\n"
        assert run(src) == "42\n"


class TestDiagnostics:
    @pytest.mark.parametrize("decl", [
        "(define-op)",
        "(define-op ^)",
        '(define-op "name" 5 left)',
        "(define-op ^ high left)",
        "(define-op ^ 5 sideways)",
        '(define-op ^ 5 left "target")',
        "(define-op ^ 5 left expt extra)",
    ])
    def test_bad_declaration_is_d003(self, decl):
        src = f"#lang racket/infix\n{decl}\n(displayln 1)\n"
        with pytest.raises(DialectError) as exc_info:
            run(src)
        assert exc_info.value.code == "D003"

    @pytest.mark.parametrize("expr", [
        "{}",
        "{1 +}",
        "{+ 1}",
        "{1 2}",
        "{1 + * 2}",
        "{? 1 : 2}",
        "{1 ? 2}",
        "{1 ? : 2}",
        "{1 ? 2 :}",
    ])
    def test_malformed_infix_is_d004(self, expr):
        src = f"#lang racket/infix\n(displayln {expr})\n"
        with pytest.raises(DialectError) as exc_info:
            run(src)
        assert exc_info.value.code == "D004"

    def test_error_srcloc_points_at_pre_rewrite_source(self):
        src = "#lang racket/infix\n(displayln 1)\n(displayln {3 *})\n"
        with pytest.raises(DialectError) as exc_info:
            run(src, "<srcloc>")
        err = exc_info.value
        assert err.srcloc is not None
        assert err.srcloc.source == "<srcloc>"
        assert err.srcloc.line == 3

    def test_multiple_errors_are_collected(self):
        # both bad forms are reported in one pass, not just the first
        src = """#lang racket/infix
(define-op bad)
(displayln {1 +})
"""
        with pytest.raises(CompilationFailed) as exc_info:
            run(src)
        text = str(exc_info.value)
        assert "D003" in text and "D004" in text


class TestDifferential:
    def test_backends_agree(self):
        assert run(CALC, backend="interp") == run(CALC, backend="pyc")
