"""Tests for occurrence typing (typed/occurrence.py)."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError
from repro.runtime.stats import STATS


class TestListRefinement:
    def test_idiomatic_list_recursion(self, run):
        assert run(
            """#lang typed
(: sum ((Listof Integer) -> Integer))
(define (sum l)
  (if (null? l) 0 (+ (car l) (sum (cdr l)))))
(displayln (sum (list 1 2 3 4 5)))"""
        ) == "15\n"

    def test_pair_predicate(self, run):
        assert run(
            """#lang typed
(: len ((Listof String) -> Integer))
(define (len l)
  (if (pair? l) (+ 1 (len (cdr l))) 0))
(displayln (len (list "a" "b")))"""
        ) == "2\n"

    def test_not_composition(self, run):
        assert run(
            """#lang typed
(: len ((Listof Integer) -> Integer))
(define (len l)
  (if (not (null? l)) (+ 1 (len (cdr l))) 0))
(displayln (len (list 9 8 7)))"""
        ) == "3\n"

    def test_refined_access_drops_tag_checks(self, rt):
        """§7.2: the checker's proof that `l` is a pair in the else branch
        lets the optimizer emit unsafe-car/-cdr there."""
        rt.register_module(
            "m",
            """#lang typed
(: sum ((Listof Integer) -> Integer))
(define (sum l)
  (if (null? l) 0 (+ (car l) (sum (cdr l)))))
(displayln (sum (list 1 2 3)))""",
        )
        rt.compile("m")
        STATS.reset()
        rt.instantiate("m", rt.make_namespace())
        assert STATS.tag_checks == 0
        assert STATS.unsafe_ops > 0

    def test_unrefined_access_keeps_tag_checks(self, rt):
        rt.register_module(
            "m",
            """#lang typed
(define xs : (Listof Integer) (list 1 2))
(displayln (car xs))""",
        )
        rt.compile("m")
        STATS.reset()
        rt.instantiate("m", rt.make_namespace())
        assert STATS.tag_checks >= 1


class TestBaseTypeRefinement:
    def test_union_split_by_string_predicate(self, run):
        assert run(
            """#lang typed
(: describe ((U Integer String) -> Integer))
(define (describe x)
  (if (string? x) (string-length x) (+ x 1)))
(displayln (describe "hello"))
(displayln (describe 41))"""
        ) == "5\n42\n"

    def test_flonum_refinement(self, run):
        assert run(
            """#lang typed
(: to-float ((U Integer Float) -> Float))
(define (to-float x)
  (if (flonum? x) x (exact->inexact x)))
(displayln (to-float 3))
(displayln (to-float 2.5))"""
        ) == "3.0\n2.5\n"

    def test_without_refinement_union_use_rejected(self, run):
        # using the union directly where Integer is demanded must fail
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(: f ((U Integer String) -> Integer))
(define (f x) (+ x 1))"""
            )

    def test_negative_refinement(self, run):
        assert run(
            """#lang typed
(: f ((U Integer String) -> Integer))
(define (f x)
  (if (not (string? x)) (+ x 1) 0))
(displayln (f 10))
(displayln (f "s"))"""
        ) == "11\n0\n"


class TestNoRefinementCases:
    def test_complex_test_expression_is_fine(self, run):
        # non-predicate tests still typecheck (just without refinement)
        assert run(
            """#lang typed
(: f (Integer -> Integer))
(define (f x) (if (< x 0) 0 x))
(displayln (f -5))"""
        ) == "0\n"

    def test_predicate_on_non_variable_no_refinement(self, run):
        assert run(
            """#lang typed
(displayln (if (null? (list 1)) 'empty 'nonempty))"""
        ) == "nonempty\n"

    def test_refinement_scoped_to_branches(self, run):
        # after the if, the variable has its original type again
        assert run(
            """#lang typed
(: f ((Listof Integer) -> Integer))
(define (f l)
  (if (null? l) 0 1))
(: g ((Listof Integer) -> Integer))
(define (g l)
  (+ (f l) (length l)))
(displayln (g (list 1 2)))"""
        ) == "3\n"
