"""Tests for the full ``typed`` language: §4.4's scaled checker."""

from __future__ import annotations

import pytest

from repro.errors import SyntaxExpansionError, TypeCheckError


class TestDeclarations:
    def test_colon_declaration(self, run):
        # §3.2's style: (: f (Number -> Number)) (define (f z) ...)
        assert run(
            """#lang typed
(: f (Number -> Number))
(define (f z) (sqrt (* 2.0 2.0)))
(displayln (f 7))"""
        ) == "2.0\n"

    def test_colon_with_extra_colon(self, run):
        # the paper also writes (: add-5 : Integer -> Integer)
        assert run(
            """#lang typed
(: add-5 : (Integer -> Integer))
(define (add-5 x) (+ x 5))
(displayln (add-5 7))"""
        ) == "12\n"

    def test_declared_function_body_checked(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(: f (Integer -> Integer))
(define (f x) "not an integer")"""
            )

    def test_declared_parameters_typed_in_body(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(: f (String -> String))
(define (f s) (+ s 1))"""
            )


class TestMutualRecursion:
    def test_two_pass_collection(self, run):
        # §4.4: first pass collects definitions with their types
        assert run(
            """#lang typed
(: is-even? (Integer -> Boolean))
(define (is-even? n) (if (= n 0) #t (is-odd? (- n 1))))
(: is-odd? (Integer -> Boolean))
(define (is-odd? n) (if (= n 0) #f (is-even? (- n 1))))
(displayln (is-even? 10))"""
        ) == "#t\n"

    def test_forward_reference_with_annotations(self, run):
        assert run(
            """#lang typed
(define (f [n : Integer]) : Integer (g (+ n 1)))
(define (g [n : Integer]) : Integer (* n 2))
(displayln (f 4))"""
        ) == "10\n"

    def test_self_recursion(self, run):
        assert run(
            """#lang typed
(define (fact [n : Integer]) : Integer
  (if (= n 0) 1 (* n (fact (- n 1)))))
(displayln (fact 10))"""
        ) == "3628800\n"


class TestInference:
    def test_unannotated_define_infers(self, run):
        assert run(
            "#lang typed\n(define x (+ 1 2))\n(define y : Integer x)\n(displayln y)"
        ) == "3\n"

    def test_if_branches_join_to_union(self, run):
        assert run(
            """#lang typed
(define (f [b : Boolean]) : (U Integer String) (if b 1 "one"))
(displayln (f #t))"""
        ) == "1\n"

    def test_truthiness_tests_allowed(self, run):
        # unlike simple-type, the full checker allows any test expression
        assert run(
            "#lang typed\n(displayln (if (member 2 (list 1 2)) 'found 'missing))"
        ) == "found\n"


class TestContainerTypes:
    def test_listof(self, run):
        assert run(
            """#lang typed
(define xs : (Listof Integer) (list 1 2 3))
(define total : Integer (foldl + 0 xs))
(displayln total)"""
        ) == "6\n"

    def test_listof_element_type_checked(self, run):
        with pytest.raises(TypeCheckError):
            run('#lang typed\n(define xs : (Listof Integer) (list 1 "two"))')

    def test_null_is_listof_anything(self, run):
        assert run(
            "#lang typed\n(define xs : (Listof Float) '())\n(displayln xs)"
        ) == "()\n"

    def test_pairof(self, run):
        assert run(
            """#lang typed
(define p : (Pairof Integer String) (cons 1 "one"))
(displayln (car p))
(displayln (cdr p))"""
        ) == "1\none\n"

    def test_fixed_length_list_type(self, run):
        assert run(
            """#lang typed
(define p : (List Integer String Boolean) (list 1 "two" #t))
(displayln (car (cdr p)))"""
        ) == "two\n"

    def test_vectorof(self, run):
        assert run(
            """#lang typed
(define v : (Vectorof Integer) (vector 1 2 3))
(vector-set! v 0 99)
(displayln (vector-ref v 0))"""
        ) == "99\n"

    def test_vector_store_type_checked(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(define v : (Vectorof Integer) (vector 1))
(vector-set! v 0 "oops")"""
            )

    def test_vectors_invariant(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(define v : (Vectorof Integer) (vector 1))
(define w : (Vectorof Number) v)"""
            )

    def test_map_over_list(self, run):
        assert run(
            """#lang typed
(define (double [x : Integer]) : Integer (* 2 x))
(define ys : (Listof Integer) (map double (list 1 2 3)))
(displayln ys)"""
        ) == "(2 4 6)\n"

    def test_map_domain_mismatch(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(define (f [x : String]) : String x)
(map f (list 1 2))"""
            )

    def test_car_requires_list_shape(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(car 42)")


class TestNumericTower:
    def test_variadic_arithmetic(self, run):
        assert run(
            """#lang typed
(define a : Integer (+ 1 2 3 4))
(define b : Float (* 1.0 2.0 3.0))
(displayln (+ a 0))
(displayln b)"""
        ) == "10\n6.0\n"

    def test_mixed_arithmetic_is_number(self, run):
        assert run(
            "#lang typed\n(define n : Number (+ 1 2.5))\n(displayln n)"
        ) == "3.5\n"

    def test_division_of_integers_is_real(self, run):
        assert run(
            "#lang typed\n(define r : Real (/ 1 3))\n(displayln r)"
        ) == "1/3\n"

    def test_float_complex(self, run):
        assert run(
            """#lang typed
(define z : Float-Complex (* 2.0+1.0i 1.0-1.0i))
(define m : Float (magnitude z))
(displayln z)
(displayln (real-part z))"""
        ) == "3.0-1.0i\n3.0\n"

    def test_comparison_rejects_complex(self, run):
        with pytest.raises(TypeCheckError):
            run("#lang typed\n(< 1.0+2.0i 3)")

    def test_quoted_list_literal_typed(self, run):
        assert run(
            """#lang typed
(define xs : (Listof Integer) '(1 2 3))
(displayln (length xs))"""
        ) == "3\n"

    def test_error_has_bottom_type(self, run):
        assert run(
            """#lang typed
(define (safe-div [a : Integer] [b : Integer]) : Integer
  (if (= b 0) (error "div0") (quotient a b)))
(displayln (safe-div 7 2))"""
        ) == "3\n"


class TestAnn:
    def test_ann_upcast(self, run):
        assert run(
            "#lang typed\n(displayln (ann 1 Number))"
        ) == "1\n"

    def test_ann_failure(self, run):
        with pytest.raises(TypeCheckError, match="ascription"):
            run("#lang typed\n(ann 1.5 Integer)")


class TestErrors:
    def test_unsupported_rest_args(self, run):
        with pytest.raises((TypeCheckError, SyntaxExpansionError)):
            run("#lang typed\n(define (f . xs) xs)\n(displayln (f 1))")

    def test_unknown_type_name(self, run):
        with pytest.raises(TypeCheckError, match="unknown type"):
            run("#lang typed\n(define x : Bogus 1)")

    def test_case_arity_mismatch_reported(self, run):
        with pytest.raises(TypeCheckError, match="no matching case"):
            run("#lang typed\n(sqrt 1.0 2.0)")


class TestAnnotatedNamedLet:
    def test_typed_loop(self, run):
        assert run(
            """#lang typed
(displayln
  (let: loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 5) acc (loop (+ i 1) (+ acc i)))))"""
        ) == "10\n"

    def test_body_checked_against_result(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(let: loop : Integer ([i : Integer 0])
  (if (= i 3) "done" (loop (+ i 1))))"""
            )

    def test_init_checked_against_parameter(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(let: loop : Integer ([i : Integer 0.5])
  i)"""
            )

    def test_loop_gets_optimized(self, rt):
        from repro.runtime.stats import STATS

        rt.register_module(
            "m",
            """#lang typed
(displayln
  (let: go : Float ([i : Integer 0] [acc : Float 0.0])
    (if (= i 50) acc (go (+ i 1) (+ acc 1.0)))))""",
        )
        rt.compile("m")
        STATS.reset()
        rt.instantiate("m", rt.make_namespace())
        assert STATS.generic_dispatches == 0
        assert STATS.unsafe_ops > 0
