"""Unit tests for the type grammar: parsing, serialization, subtyping, join."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError
from repro.langs.typed_common import types as ty
from repro.reader import read_string_one


def parse(src: str) -> ty.Type:
    return ty.parse_type(read_string_one(src))


class TestParsing:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("Integer", ty.INTEGER),
            ("Float", ty.FLOAT),
            ("Real", ty.REAL),
            ("Number", ty.NUMBER),
            ("Float-Complex", ty.FLOAT_COMPLEX),
            ("Boolean", ty.BOOLEAN),
            ("String", ty.STRING),
            ("Void", ty.VOID),
            ("Any", ty.ANY),
            ("Null", ty.NULL_TYPE),
        ],
    )
    def test_base_types(self, src, expected):
        assert parse(src) is expected

    def test_prefix_arrow(self):
        t = parse("(-> Integer String Boolean)")
        assert isinstance(t, ty.FunType)
        assert t.params == [ty.INTEGER, ty.STRING]
        assert t.result is ty.BOOLEAN

    def test_infix_arrow(self):
        t = parse("(Integer String -> Boolean)")
        assert isinstance(t, ty.FunType)
        assert t.params == [ty.INTEGER, ty.STRING]

    def test_nullary_function(self):
        t = parse("(-> Integer)")
        assert isinstance(t, ty.FunType) and t.params == []

    def test_nested_function(self):
        t = parse("((Integer -> Integer) Integer -> Integer)")
        assert isinstance(t.params[0], ty.FunType)

    def test_listof(self):
        t = parse("(Listof Float)")
        assert isinstance(t, ty.ListofType) and t.element is ty.FLOAT

    def test_pairof(self):
        t = parse("(Pairof Integer String)")
        assert isinstance(t, ty.PairType)

    def test_fixed_list(self):
        t = parse("(List Integer String)")
        assert isinstance(t, ty.PairType)
        assert t.car is ty.INTEGER
        assert isinstance(t.cdr, ty.PairType)
        assert t.cdr.cdr is ty.NULL_TYPE

    def test_union(self):
        t = parse("(U Integer String)")
        assert isinstance(t, ty.UnionType)
        assert len(t.members) == 2

    def test_union_collapses_subsumed(self):
        assert parse("(U Integer Number)") is ty.NUMBER

    def test_singleton_union_collapses(self):
        assert parse("(U Integer Integer)") is ty.INTEGER

    def test_case_arrow(self):
        t = parse("(case-> (Integer -> Integer) (Float -> Float))")
        assert isinstance(t, ty.CaseFunType) and len(t.cases) == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeCheckError):
            parse("Whatever")

    def test_unknown_constructor_rejected(self):
        with pytest.raises(TypeCheckError):
            parse("(Setof Integer)")


class TestSerialization:
    @pytest.mark.parametrize(
        "src",
        [
            "Integer",
            "(-> Integer Float)",
            "(Listof (Pairof Integer String))",
            "(U Integer String Boolean)",
            "(Vectorof Float)",
            "(case-> (Integer -> Integer) (Float -> Float))",
            "(-> (-> Integer) (Listof Integer))",
        ],
    )
    def test_roundtrip(self, src):
        t = parse(src)
        assert ty.parse_type_datum(ty.serialize(t)) == t

    def test_serialize_to_value_roundtrip(self):
        t = parse("(Listof (U Integer Float))")
        value = ty.serialize_to_value(t)
        assert ty.parse_type_datum(value) == t


class TestSubtyping:
    def test_numeric_tower(self):
        assert ty.subtype(ty.INTEGER, ty.REAL)
        assert ty.subtype(ty.INTEGER, ty.NUMBER)
        assert ty.subtype(ty.FLOAT, ty.REAL)
        assert ty.subtype(ty.FLOAT_COMPLEX, ty.NUMBER)
        assert not ty.subtype(ty.REAL, ty.INTEGER)
        assert not ty.subtype(ty.FLOAT, ty.INTEGER)
        assert not ty.subtype(ty.INTEGER, ty.FLOAT)
        assert not ty.subtype(ty.FLOAT_COMPLEX, ty.REAL)

    def test_any_is_top(self):
        for t in (ty.INTEGER, parse("(Listof Float)"), parse("(-> Integer Integer)")):
            assert ty.subtype(t, ty.ANY)
            assert not ty.subtype(ty.ANY, t)

    def test_nothing_is_bottom(self):
        for t in (ty.INTEGER, parse("(Listof Float)"), ty.ANY):
            assert ty.subtype(ty.NOTHING, t)

    def test_union_rules(self):
        u = parse("(U Integer String)")
        assert ty.subtype(ty.INTEGER, u)
        assert ty.subtype(ty.STRING, u)
        assert not ty.subtype(ty.FLOAT, u)
        assert ty.subtype(u, ty.ANY)
        assert ty.subtype(parse("(U Integer String)"), parse("(U String Integer Boolean)"))

    def test_listof_covariant(self):
        assert ty.subtype(parse("(Listof Integer)"), parse("(Listof Number)"))
        assert not ty.subtype(parse("(Listof Number)"), parse("(Listof Integer)"))

    def test_null_below_listof(self):
        assert ty.subtype(ty.NULL_TYPE, parse("(Listof Integer)"))

    def test_pair_chain_below_listof(self):
        assert ty.subtype(parse("(List Integer Integer)"), parse("(Listof Integer)"))
        assert not ty.subtype(parse("(List Integer String)"), parse("(Listof Integer)"))

    def test_function_contravariance(self):
        f_wide = parse("(Number -> Integer)")
        f_narrow = parse("(Integer -> Number)")
        assert ty.subtype(f_wide, f_narrow)
        assert not ty.subtype(f_narrow, f_wide)

    def test_vector_invariance(self):
        assert not ty.subtype(parse("(Vectorof Integer)"), parse("(Vectorof Number)"))
        assert ty.subtype(parse("(Vectorof Integer)"), parse("(Vectorof Integer)"))

    def test_case_function_subtyping(self):
        case = parse("(case-> (Integer -> Integer) (Float -> Float))")
        assert ty.subtype(case, parse("(Integer -> Integer)"))
        assert ty.subtype(case, parse("(Float -> Float)"))
        assert not ty.subtype(case, parse("(String -> String)"))


class TestJoin:
    def test_join_with_subtype(self):
        assert ty.join(ty.INTEGER, ty.NUMBER) is ty.NUMBER
        assert ty.join(ty.NUMBER, ty.INTEGER) is ty.NUMBER

    def test_join_of_equal(self):
        assert ty.join(ty.FLOAT, ty.FLOAT) is ty.FLOAT

    def test_join_unrelated_makes_union(self):
        joined = ty.join(ty.INTEGER, ty.STRING)
        assert isinstance(joined, ty.UnionType)
        assert ty.subtype(ty.INTEGER, joined) and ty.subtype(ty.STRING, joined)

    def test_join_is_upper_bound(self):
        a, b = parse("(Listof Integer)"), ty.NULL_TYPE
        joined = ty.join(a, b)
        assert ty.subtype(a, joined) and ty.subtype(b, joined)
