"""Tests for typed structs (nominal struct types in the typed language)."""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation, SyntaxExpansionError, TypeCheckError

GEOMETRY = """#lang typed
(struct point ([x : Float] [y : Float]))
(: norm (point -> Float))
(define (norm p)
  (sqrt (+ (* (point-x p) (point-x p)) (* (point-y p) (point-y p)))))
(provide point point? point-x point-y norm)
"""


class TestWithinModule:
    def test_construct_and_access(self, run):
        assert run(
            """#lang typed
(struct pair2 ([a : Integer] [b : Integer]))
(define p : pair2 (pair2 1 2))
(displayln (+ (pair2-a p) (pair2-b p)))"""
        ) == "3\n"

    def test_struct_name_usable_in_annotations(self, run):
        assert run(
            """#lang typed
(struct box1 ([v : String]))
(: get (box1 -> String))
(define (get b) (box1-v b))
(displayln (get (box1 "contents")))"""
        ) == "contents\n"

    def test_constructor_field_types_checked(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(struct point ([x : Float] [y : Float]))
(point 1 2)"""
            )

    def test_accessor_requires_struct_type(self, run):
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(struct point ([x : Float] [y : Float]))
(point-x 42)"""
            )

    def test_nominal_not_structural(self, run):
        # two structs with the same shape are distinct types
        with pytest.raises(TypeCheckError):
            run(
                """#lang typed
(struct a ([v : Integer]))
(struct b ([v : Integer]))
(define x : a (b 1))"""
            )

    def test_structs_nest_in_container_types(self, run):
        assert run(
            """#lang typed
(struct point ([x : Float] [y : Float]))
(define pts : (Listof point) (list (point 1.0 2.0) (point 3.0 4.0)))
(: sum-x ((Listof point) -> Float))
(define (sum-x ps)
  (if (null? ps) 0.0 (+ (point-x (car ps)) (sum-x (cdr ps)))))
(displayln (sum-x pts))"""
        ) == "4.0\n"

    def test_predicate_takes_any(self, run):
        assert run(
            """#lang typed
(struct point ([x : Float]))
(displayln (point? "no"))"""
        ) == "#f\n"

    def test_options_rejected_in_typed(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang typed\n(struct p ([x : Float]) #:mutable)")


class TestAcrossModules:
    def test_typed_client(self, rt):
        rt.register_module("geometry", GEOMETRY)
        rt.register_module(
            "client",
            """#lang typed
(require geometry)
(define p : point (point 6.0 8.0))
(displayln (norm p))""",
        )
        assert rt.run("client") == "10.0\n"

    def test_typed_client_misuse_static(self, rt):
        rt.register_module("geometry", GEOMETRY)
        rt.register_module(
            "client",
            '#lang typed\n(require geometry)\n(norm "nope")',
        )
        with pytest.raises(TypeCheckError):
            rt.compile("client")

    def test_untyped_client_contract(self, rt):
        rt.register_module("geometry", GEOMETRY)
        rt.register_module(
            "client",
            "#lang racket\n(require geometry)\n(displayln (norm (point 3.0 4.0)))",
        )
        assert rt.run("client") == "5.0\n"

    def test_untyped_client_blamed(self, rt):
        rt.register_module("geometry", GEOMETRY)
        rt.register_module(
            "client", '#lang racket\n(require geometry)\n(norm "not-a-point")'
        )
        with pytest.raises(ContractViolation) as exc:
            rt.run("client")
        assert "point?" in str(exc.value)
