"""Tests for ``#lang racket/match-ext``: extensible pattern matching.

Covers: the inherited pattern language still works; ``define-match-expander``
rewrites patterns (including use-before-definition via the dialect hoist,
shadowing built-in pattern heads, and cross-module ``provide``/``require``);
decision-tree compilation preserves first-match semantics and reports the
sharing on the observe bus; exhaustiveness near-misses reach the coach;
expanders survive the artifact cache; and everything behaves identically on
both backends.
"""

from __future__ import annotations

import pytest

from repro import Runtime
from repro.errors import RuntimeReproError, SyntaxExpansionError

BACKENDS = ("interp", "pyc")

BASICS = """#lang racket/match-ext
(define (classify v)
  (match v
    [(list 1 x) (list 'one x)]
    [(list a b) (+ a b)]
    [(cons h _) h]
    [(vector a b) (* a b)]
    ["str" 'string]
    [7 'seven]
    [(? symbol?) 'symbol]
    [_ 'other]))
(displayln (classify (list 1 41)))
(displayln (classify (list 20 22)))
(displayln (classify (cons 9 10)))
(displayln (classify (vector 6 7)))
(displayln (classify "str"))
(displayln (classify 7))
(displayln (classify 'sym))
(displayln (classify 3.5))
"""

POINT = """#lang racket/match-ext
(define-match-expander point
  (syntax-rules () [(_ x y) (list 'point x y)]))
(define (norm-sq p)
  (match p
    [(point x y) (+ (* x x) (* y y))]
    [_ 'not-a-point]))
(displayln (norm-sq (list 'point 3 4)))
(displayln (norm-sq 17))
"""


def run(source, path="<m>", **kwargs):
    with Runtime(cache=False, **kwargs) as rt:
        return rt.run_source(source, path)


class TestBasePatterns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_inherited_pattern_language(self, backend):
        out = run(BASICS, backend=backend)
        assert out == "(one 41)\n42\n9\n42\nstring\nseven\nsymbol\nother\n"

    def test_match_failure_still_raises(self):
        src = "#lang racket/match-ext\n(match 5 [(list a) a])\n"
        with pytest.raises(RuntimeReproError, match="no matching clause"):
            run(src)


class TestExpanders:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_define_match_expander(self, backend):
        out = run(POINT, backend=backend)
        assert out == "25\nnot-a-point\n"

    def test_use_before_definition_is_hoisted(self):
        src = """#lang racket/match-ext
(define (tag v)
  (match v
    [(pair2 a b) (list b a)]
    [_ 'no]))
(displayln (tag (list 'x 'y)))
(define-match-expander pair2
  (syntax-rules () [(_ a b) (list a b)]))
"""
        assert run(src) == "(y x)\n"

    def test_expander_can_shadow_builtin_pattern(self):
        # `?` is a pattern-only keyword (not a language import), so a user
        # expander of that name takes over predicate patterns entirely
        src = """#lang racket/match-ext
(define-match-expander ?
  (syntax-rules () [(_ a b) (list a b)]))
(displayln (match (list 1 2) [(? a b) (+ a b)] [_ 'no]))
"""
        assert run(src) == "3\n"

    def test_expanders_nest_and_chain(self):
        # an expander may rewrite to a pattern using another expander
        src = """#lang racket/match-ext
(define-match-expander two (syntax-rules () [(_ p) (list p p)]))
(define-match-expander twotwo (syntax-rules () [(_ p) (two (two p))]))
(displayln (match (list (list 1 1) (list 1 1)) [(twotwo x) x] [_ 'no]))
"""
        assert run(src) == "1\n"

    def test_expander_in_expression_position_is_an_error(self):
        src = """#lang racket/match-ext
(define-match-expander pt (syntax-rules () [(_ a) (list a)]))
(pt 1)
"""
        with pytest.raises(SyntaxExpansionError) as exc_info:
            run(src)
        assert "match pattern" in str(exc_info.value)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_expander_provided_across_modules(self, backend):
        lib = """#lang racket/match-ext
(define-match-expander posn
  (syntax-rules () [(_ x y) (cons x y)]))
(provide posn)
"""
        client = """#lang racket/match-ext
(require "lib")
(displayln (match (cons 3 4) [(posn x y) (+ x y)]))
"""
        with Runtime(cache=False, backend=backend) as rt:
            rt.register_module("lib", lib)
            assert rt.run_source(client, "client") == "7\n"

    def test_expander_survives_the_artifact_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        lib = """#lang racket/match-ext
(define-match-expander posn
  (syntax-rules () [(_ x y) (cons x y)]))
(provide posn)
"""
        client = """#lang racket/match-ext
(require "lib")
(displayln (match (cons 20 22) [(posn x y) (+ x y)]))
"""
        with Runtime(cache_dir=cache) as rt:
            rt.register_module("lib", lib)
            rt.register_module("client", client)
            assert rt.run("client") == "42\n"
            assert rt.stats.expansion_steps > 0
        with Runtime(cache_dir=cache) as rt2:
            rt2.register_module("lib", lib)
            rt2.register_module("client", client)
            # warm: the expander is rebuilt from the cached artifact's
            # define-syntaxes replay — no source pass at all
            assert rt2.run("client") == "42\n"
            assert rt2.stats.expansion_steps == 0


class TestDecisionTrees:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_adjacent_pair_clauses_share_a_root_test(self, backend):
        src = """#lang racket/match-ext
(define (dispatch v)
  (match v
    [(list 'add a b) (+ a b)]
    [(list 'mul a b) (* a b)]
    [(cons 'neg r) (- 0 (car r))]
    [_ 'unknown]))
(displayln (dispatch (list 'add 20 22)))
(displayln (dispatch (list 'mul 6 7)))
(displayln (dispatch (list 'neg 5)))
(displayln (dispatch 9))
"""
        assert run(src, backend=backend) == "42\n42\n-5\nunknown\n"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_vector_run_shares_length_test(self, backend):
        src = """#lang racket/match-ext
(define (f v)
  (match v
    [(vector 0 y) y]
    [(vector x y) (+ x y)]
    [(vector x y z) (* x y z)]
    [_ 'no]))
(displayln (f (vector 0 9)))
(displayln (f (vector 1 2)))
(displayln (f (vector 2 3 4)))
(displayln (f (vector 1)))
"""
        assert run(src, backend=backend) == "9\n3\n24\nno\n"

    def test_first_match_order_is_preserved(self):
        src = """#lang racket/match-ext
(displayln (match (list 1 2)
  [(list a b) 'first]
  [(list 1 b) 'second]))
"""
        assert run(src) == "first\n"

    def test_run_falls_through_to_later_clauses(self):
        # every clause in the shared run fails; control reaches the
        # non-run clause after it
        src = """#lang racket/match-ext
(displayln (match (list 1 2 3)
  [(list a) 'one]
  [(list a b) 'two]
  ["s" 'string]
  [_ 'fallthrough]))
"""
        assert run(src) == "fallthrough\n"

    def test_dtree_sharing_is_reported_to_the_coach(self):
        src = """#lang racket/match-ext
(displayln (match (list 1 2)
  [(list a) a]
  [(list a b) (+ a b)]
  [(cons h _) h]
  [_ 'no]))
"""
        with Runtime(trace=True, cache=False) as rt:
            rt.run_source(src, "<dtree>")
            fired = [
                e for e in rt.tracer.events
                if e.category == "coach" and e.name == "fired"
                and e.attrs.get("rule") == "match-dtree"
            ]
            assert fired, "shared root tests must fire a match-dtree event"
            assert "3 clauses" in fired[0].attrs["replacement"]


class TestExhaustivenessCoach:
    def test_missing_catch_all_is_a_near_miss(self):
        src = """#lang racket/match-ext
(define (f v) (match v [(list a) a] [(list a b) b]))
(displayln (f (list 1)))
"""
        with Runtime(trace=True, cache=False) as rt:
            rt.run_source(src, "<nm>")
            misses = [
                e for e in rt.tracer.events
                if e.category == "coach" and e.name == "near-miss"
                and e.attrs.get("rule") == "match-exhaustive"
            ]
            assert misses
            assert "no catch-all" in misses[0].attrs["reason"]

    def test_unreachable_clause_is_a_near_miss(self):
        src = """#lang racket/match-ext
(displayln (match 1 [x 'caught] [_ 'dead]))
"""
        with Runtime(trace=True, cache=False) as rt:
            rt.run_source(src, "<dead>")
            misses = [
                e for e in rt.tracer.events
                if e.category == "coach" and e.name == "near-miss"
                and e.attrs.get("rule") == "match-exhaustive"
            ]
            assert misses
            assert "unreachable" in misses[0].attrs["reason"]

    def test_exhaustive_match_is_quiet(self):
        src = "#lang racket/match-ext\n(displayln (match 1 [x x]))\n"
        with Runtime(trace=True, cache=False) as rt:
            rt.run_source(src, "<quiet>")
            misses = [
                e for e in rt.tracer.events
                if e.category == "coach" and e.name == "near-miss"
                and e.attrs.get("rule") == "match-exhaustive"
            ]
            assert misses == []


class TestDifferential:
    @pytest.mark.parametrize("source", [BASICS, POINT])
    def test_backends_agree(self, source):
        assert run(source, backend="interp") == run(source, backend="pyc")
