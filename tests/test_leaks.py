"""Regression tests for global-state leaks across Runtime lifetimes.

Before this PR, every Runtime leaked its languages' export tables into the
global binding TABLE (~4k entries per Runtime) and all Runtimes shared one
mutable STATS singleton. These tests pin the fixes.
"""

from __future__ import annotations

import gc

from repro import Runtime
from repro.runtime.stats import STATS
from repro.syn.binding import TABLE

SOURCE = """#lang racket
(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))
(twice (displayln "hi"))
"""


class TestBindingTableReclamation:
    def test_entry_count_flat_across_fresh_runtimes(self):
        """The ISSUE's leak: N fresh Runtimes must not grow the table."""
        gc.collect()  # flush finalizers of earlier tests' Runtimes first
        counts = []
        for _ in range(5):
            with Runtime() as rt:
                rt.register_module("m", SOURCE)
                rt.run("m")
            counts.append(TABLE.entry_count())
        assert len(set(counts)) == 1, f"table grew across Runtimes: {counts}"

    def test_close_reclaims_entries(self):
        gc.collect()
        before = TABLE.entry_count()
        rt = Runtime()
        rt.register_module("m", SOURCE)
        rt.run("m")
        assert TABLE.entry_count() > before
        reclaimed = rt.close()
        assert reclaimed > 0
        assert TABLE.entry_count() == before

    def test_close_is_idempotent(self):
        rt = Runtime()
        assert rt.close() > 0
        assert rt.close() == 0

    def test_garbage_collected_runtime_reclaims_entries(self):
        gc.collect()
        before = TABLE.entry_count()
        rt = Runtime()
        rt.register_module("m", SOURCE)
        rt.run("m")
        del rt
        gc.collect()
        assert TABLE.entry_count() == before

    def test_reregistering_module_does_not_stack_bindings(self):
        gc.collect()
        with Runtime() as rt:
            rt.register_module("m", SOURCE)
            rt.run("m")
            baseline = TABLE.entry_count()
            for _ in range(3):
                rt.register_module("m", SOURCE)
                rt.run("m")
                assert TABLE.entry_count() == baseline


class TestPerRuntimeStats:
    def test_counters_do_not_bleed_between_runtimes(self):
        rt1 = Runtime()
        rt1.register_module("m", SOURCE)
        rt1.run("m")
        steps1 = rt1.stats.expansion_steps
        assert steps1 > 0

        rt2 = Runtime()
        assert rt2.stats.expansion_steps == 0
        rt2.register_module("m", "#lang racket\n(displayln 1)\n")
        rt2.run("m")
        assert rt1.stats.expansion_steps == steps1  # untouched by rt2
        rt1.close()
        rt2.close()

    def test_module_level_alias_tracks_newest_runtime(self):
        """Existing callers read the module-level STATS after a run; the
        alias must resolve to the Runtime that did the work."""
        rt = Runtime()
        STATS.reset()
        rt.register_module("m", SOURCE)
        rt.run("m")
        assert STATS.expansion_steps == rt.stats.expansion_steps > 0
        rt.close()

    def test_alias_writes_reach_the_current_runtime(self):
        rt = Runtime()
        STATS.reset()
        STATS.tag_checks += 7
        assert rt.stats.tag_checks == 7
        rt.close()
