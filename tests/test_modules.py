"""Tests for the module system: provide/require, separate compilation,
fresh compile-time stores, and object-language macro export."""

from __future__ import annotations

import pytest

from repro.errors import ModuleError, SyntaxExpansionError, UnboundIdentifierError


class TestProvideRequire:
    def test_value_export(self, rt):
        rt.register_module("lib", "#lang racket\n(define answer 42)\n(provide answer)")
        rt.register_module("app", "#lang racket\n(require lib)\n(displayln answer)")
        assert rt.run("app") == "42\n"

    def test_function_export(self, rt):
        rt.register_module(
            "lib", "#lang racket\n(define (double x) (* 2 x))\n(provide double)"
        )
        rt.register_module("app", "#lang racket\n(require lib)\n(displayln (double 21))")
        assert rt.run("app") == "42\n"

    def test_unprovided_binding_invisible(self, rt):
        rt.register_module(
            "lib", "#lang racket\n(define pub 1)\n(define priv 2)\n(provide pub)"
        )
        rt.register_module("app", "#lang racket\n(require lib)\n(displayln priv)")
        with pytest.raises(UnboundIdentifierError):
            rt.run("app")

    def test_rename_out(self, rt):
        rt.register_module(
            "lib",
            "#lang racket\n(define internal-name 7)\n(provide (rename-out [internal-name external]))",
        )
        rt.register_module("app", "#lang racket\n(require lib)\n(displayln external)")
        assert rt.run("app") == "7\n"

    def test_only_in(self, rt):
        rt.register_module(
            "lib", "#lang racket\n(define a 1)\n(define b 2)\n(provide a b)"
        )
        rt.register_module(
            "app",
            "#lang racket\n(require (only-in lib a))\n(displayln a)",
        )
        assert rt.run("app") == "1\n"

    def test_only_in_with_rename(self, rt):
        rt.register_module("lib", "#lang racket\n(define a 1)\n(provide a)")
        rt.register_module(
            "app",
            "#lang racket\n(require (only-in lib [a fresh-name]))\n(displayln fresh-name)",
        )
        assert rt.run("app") == "1\n"

    def test_require_missing_export_rejected(self, rt):
        rt.register_module("lib", "#lang racket\n(define a 1)\n(provide a)")
        rt.register_module(
            "app", "#lang racket\n(require (only-in lib missing))\n(displayln 1)"
        )
        with pytest.raises(SyntaxExpansionError):
            rt.run("app")

    def test_transitive_requires(self, rt):
        rt.register_module("a", "#lang racket\n(define base 10)\n(provide base)")
        rt.register_module(
            "b",
            "#lang racket\n(require a)\n(define doubled (* 2 base))\n(provide doubled)",
        )
        rt.register_module("c", "#lang racket\n(require b)\n(displayln doubled)")
        assert rt.run("c") == "20\n"

    def test_diamond_dependency_instantiated_once(self, rt):
        rt.register_module(
            "base", "#lang racket\n(display \"init!\")\n(define x 1)\n(provide x)"
        )
        rt.register_module("left", "#lang racket\n(require base)\n(define l x)\n(provide l)")
        rt.register_module("right", "#lang racket\n(require base)\n(define r x)\n(provide r)")
        rt.register_module(
            "top", "#lang racket\n(require left)\n(require right)\n(displayln (+ l r))"
        )
        assert rt.run("top") == "init!2\n"

    def test_module_cycle_rejected(self, rt):
        rt.register_module("a", "#lang racket\n(require b)\n(define x 1)")
        rt.register_module("b", "#lang racket\n(require a)\n(define y 2)")
        with pytest.raises(ModuleError):
            rt.compile("a")

    def test_unknown_module_rejected(self, rt):
        rt.register_module("app", "#lang racket\n(require does-not-exist)")
        with pytest.raises(ModuleError):
            rt.compile("app")


class TestMacroExport:
    def test_syntax_rules_macro_across_modules(self, rt):
        rt.register_module(
            "macros",
            """#lang racket
(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))
(provide twice)""",
        )
        rt.register_module(
            "app", "#lang racket\n(require macros)\n(twice (display 'hi))\n(newline)"
        )
        assert rt.run("app") == "hihi\n"

    def test_procedural_macro_across_modules(self, rt):
        rt.register_module(
            "macros",
            """#lang racket
(define-syntax (const-42 stx) (datum->syntax stx (list (quote-syntax quote) (datum->syntax stx 42))))
(provide const-42)""",
        )
        rt.register_module(
            "app", "#lang racket\n(require macros)\n(displayln (const-42))"
        )
        assert rt.run("app") == "42\n"

    def test_macro_references_defining_module_binding(self, rt):
        # the macro's template mentions `helper`, private to the library;
        # hygiene lets the client use it without importing helper
        rt.register_module(
            "macros",
            """#lang racket
(define (helper x) (* x 10))
(define-syntax tenfold (syntax-rules () [(_ e) (helper e)]))
(provide tenfold)""",
        )
        rt.register_module(
            "app", "#lang racket\n(require macros)\n(displayln (tenfold 4))"
        )
        assert rt.run("app") == "40\n"

    def test_exported_macro_hygiene_against_client_bindings(self, rt):
        rt.register_module(
            "macros",
            """#lang racket
(define (helper x) (* x 10))
(define-syntax tenfold (syntax-rules () [(_ e) (helper e)]))
(provide tenfold)""",
        )
        rt.register_module(
            "app",
            """#lang racket
(require macros)
(define (helper x) (error "client helper must not be used"))
(displayln (tenfold 4))""",
        )
        assert rt.run("app") == "40\n"


class TestSeparateCompilation:
    def test_compile_before_run(self, rt):
        rt.register_module("lib", "#lang racket\n(define v 5)\n(provide v)")
        compiled = rt.compile("lib")
        assert compiled.exports["v"].name == "v"
        assert compiled.language == "racket"

    def test_compilation_cached(self, rt):
        rt.register_module("lib", "#lang racket\n(define v 5)\n(provide v)")
        assert rt.compile("lib") is rt.compile("lib")

    def test_instantiation_per_namespace(self, rt):
        rt.register_module(
            "counter",
            "#lang racket\n(define state (box 0))\n(set-box! state (+ (unbox state) 1))\n(displayln (unbox state))",
        )
        assert rt.run("counter") == "1\n"
        # a fresh namespace re-instantiates from the same compiled module
        assert rt.run("counter") == "1\n"

    def test_requires_recorded(self, rt):
        rt.register_module("dep", "#lang racket\n(define d 1)\n(provide d)")
        rt.register_module("app", "#lang racket\n(require dep)\n(displayln d)")
        assert rt.compile("app").requires == ["dep"]

    def test_fresh_compile_time_store_per_module(self, rt):
        # compile-time mutation in one module must not leak into another
        # compilation (§2.3: "each module is compiled with a fresh store")
        rt.register_module(
            "m1",
            """#lang racket
(define-syntax (probe stx)
  (datum->syntax stx (list (quote-syntax quote)
                           (datum->syntax stx (typed-context?)))))
(displayln (probe))""",
        )
        assert rt.run("m1") == "#f\n"

    def test_language_without_module_begin_rejected(self, rt):
        from repro.modules.registry import Language

        rt.registry.register_language(Language("hollow"))
        rt.register_module("m", "#lang hollow\n(+ 1 2)")
        with pytest.raises(ModuleError):
            rt.compile("m")

    def test_unknown_language_rejected(self, rt):
        rt.register_module("m", "#lang nonexistent-language\nx")
        with pytest.raises(ModuleError):
            rt.compile("m")


class TestFileModules(object):
    def test_run_file(self, rt, tmp_path):
        f = tmp_path / "prog.rkt"
        f.write_text("#lang racket\n(displayln (* 6 7))\n")
        assert rt.run_file(str(f)) == "42\n"

    def test_relative_require_between_files(self, rt, tmp_path):
        (tmp_path / "lib.rkt").write_text("#lang racket\n(define v 9)\n(provide v)\n")
        (tmp_path / "app.rkt").write_text(
            '#lang racket\n(require "lib.rkt")\n(displayln v)\n'
        )
        assert rt.run_file(str(tmp_path / "app.rkt")) == "9\n"

    def test_cli_main(self, tmp_path, capsys):
        from repro.tools.runner import main

        f = tmp_path / "prog.rkt"
        f.write_text("#lang racket\n(displayln 'cli)\n")
        assert main([str(f)]) == 0
        assert capsys.readouterr().out == "cli\n"

    def test_cli_no_args(self, capsys):
        from repro.tools.runner import main

        assert main([]) == 2


class TestCanonicalRegistration:
    """``register_file`` used to key by ``abspath`` alone, so a symlink or a
    relative spelling of the same file registered — and instantiated — a
    second module. All spellings must converge on one canonical key."""

    BODY = "#lang racket\n(displayln 'boot)\n(define b (box 1))\n(provide b)\n"

    def test_symlink_and_relative_spellings_share_one_key(self, rt, tmp_path):
        import os

        real = tmp_path / "m.rkt"
        real.write_text(self.BODY)
        (tmp_path / "sub").mkdir()
        link = tmp_path / "alias.rkt"
        os.symlink(str(real), str(link))
        canon = rt.register_file(str(real))
        assert rt.register_file(str(link)) == canon
        assert rt.register_file(str(tmp_path / "sub" / ".." / "m.rkt")) == canon
        assert len([p for p in rt.registry.sources if p == canon]) == 1

    def test_two_require_spellings_one_instance(self, rt, tmp_path):
        real = tmp_path / "m.rkt"
        real.write_text(self.BODY)
        (tmp_path / "sub").mkdir()
        app = tmp_path / "app.rkt"
        app.write_text(
            '#lang racket\n'
            '(require "m.rkt")\n'
            '(require "sub/../m.rkt")\n'
            '(displayln (unbox b))\n'
        )
        # a double registration would instantiate the body twice and print
        # 'boot' twice
        assert rt.run_file(str(app)) == "boot\n1\n"

    def test_symlinked_require_shares_instance(self, rt, tmp_path):
        import os

        real = tmp_path / "m.rkt"
        real.write_text(self.BODY)
        os.symlink(str(real), str(tmp_path / "alias.rkt"))
        app = tmp_path / "app.rkt"
        app.write_text(
            '#lang racket\n'
            '(require "m.rkt")\n'
            '(require "alias.rkt")\n'
            '(displayln (unbox b))\n'
        )
        assert rt.run_file(str(app)) == "boot\n1\n"


class TestAllDefinedOut:
    def test_untyped_all_defined(self, rt):
        rt.register_module(
            "lib",
            "#lang racket\n(define a 1)\n(define b 2)\n(provide (all-defined-out))",
        )
        rt.register_module("app", "#lang racket\n(require lib)\n(displayln (+ a b))")
        assert rt.run("app") == "3\n"

    def test_typed_all_defined_typed_client(self, rt):
        rt.register_module(
            "tlib",
            """#lang typed
(define x : Integer 10)
(define (double [n : Integer]) : Integer (* 2 n))
(provide (all-defined-out))""",
        )
        rt.register_module(
            "app", "#lang typed\n(require tlib)\n(displayln (double x))"
        )
        assert rt.run("app") == "20\n"

    def test_typed_all_defined_untyped_client_contracted(self, rt):
        from repro.errors import ContractViolation

        rt.register_module(
            "tlib",
            """#lang typed
(define (double [n : Integer]) : Integer (* 2 n))
(provide (all-defined-out))""",
        )
        rt.register_module("app", '#lang racket\n(require tlib)\n(double "x")')
        with pytest.raises(ContractViolation):
            rt.run("app")

    def test_macros_not_included(self, rt):
        # all-defined-out covers value definitions; macros stay private
        from repro.errors import UnboundIdentifierError

        rt.register_module(
            "lib",
            """#lang racket
(define v 1)
(define-syntax m (syntax-rules () [(_) 99]))
(provide (all-defined-out))""",
        )
        rt.register_module("app", "#lang racket\n(require lib)\n(displayln (m))")
        with pytest.raises(UnboundIdentifierError):
            rt.run("app")
