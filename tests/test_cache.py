"""Tests for the persistent compiled-artifact cache (repro.modules.cache).

Covers: artifact round trips for untyped / macro-exporting / typed modules
(including the §5 persisted type environments), cross-Runtime warm starts
that skip expansion entirely, content-hash invalidation when sources or
dependencies change, graceful degradation on corrupt artifacts, and the CLI
surface.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro import Runtime
from repro.errors import TypeCheckError
from repro.modules.cache import ModuleCache
from repro.syn.binding import TABLE

RACKET_LIB = """#lang racket
(define-syntax swap!
  (syntax-rules ()
    [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
(define (triple x) (* 3 x))
(provide swap! triple)
"""

RACKET_CLIENT = """#lang racket
(require "lib")
(define x 1)
(define y 2)
(swap! x y)
(displayln (list x y (triple 5)))
"""

TYPED_LIB = """#lang typed
(: twice (-> Integer Integer))
(define (twice n) (* 2 n))
(provide twice)
"""

TYPED_CLIENT = """#lang typed
(require "tlib")
(displayln (twice 21))
"""

SIMPLE_TYPE_MOD = """#lang simple-type
(define x : Integer 41)
(define (inc [n : Integer]) : Integer (+ n 1))
(displayln (inc x))
"""


def cached_runtime(tmp_path, **modules) -> Runtime:
    rt = Runtime(cache_dir=str(tmp_path / "cache"))
    for path, source in modules.items():
        rt.register_module(path, source)
    return rt


class TestRoundTrip:
    def test_untyped_module_round_trips(self, tmp_path):
        with cached_runtime(tmp_path, m="#lang racket\n(displayln (+ 40 2))\n") as rt:
            assert rt.run("m") == "42\n"
            assert rt.stats.cache_stores == 1
        with cached_runtime(tmp_path, m="#lang racket\n(displayln (+ 40 2))\n") as rt2:
            assert rt2.run("m") == "42\n"
            assert rt2.stats.cache_hits == 1
            assert rt2.stats.cache_misses == 0

    def test_macro_exporting_module_round_trips(self, tmp_path):
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt:
            assert rt.run("client") == "(2 1 15)\n"
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt2:
            # the client's expansion of `swap!` happened in the first
            # Runtime; the cached artifact replays without the macro
            assert rt2.run("client") == "(2 1 15)\n"
            assert rt2.stats.cache_hits == 2

    def test_simple_type_module_round_trips(self, tmp_path):
        with cached_runtime(tmp_path, m=SIMPLE_TYPE_MOD) as rt:
            assert rt.run("m") == "42\n"
        with cached_runtime(tmp_path, m=SIMPLE_TYPE_MOD) as rt2:
            assert rt2.run("m") == "42\n"
            assert rt2.stats.cache_hits == 1

    def test_typed_module_round_trips(self, tmp_path):
        with cached_runtime(tmp_path, tlib=TYPED_LIB, tclient=TYPED_CLIENT) as rt:
            assert rt.run("tclient") == "42\n"
        with cached_runtime(tmp_path, tlib=TYPED_LIB, tclient=TYPED_CLIENT) as rt2:
            assert rt2.run("tclient") == "42\n"
            assert rt2.stats.cache_hits == 2

    def test_persisted_type_environment_checks_warm_clients(self, tmp_path):
        """§5: the typed library's type environment must survive in the
        artifact — a *new* client compiled against the cached module still
        gets a compile-time type error."""
        with cached_runtime(tmp_path, tlib=TYPED_LIB) as rt:
            rt.compile("tlib")
        bad = '#lang typed\n(require "tlib")\n(displayln (twice "nope"))\n'
        with cached_runtime(tmp_path, tlib=TYPED_LIB, bad=bad) as rt2:
            with pytest.raises(TypeCheckError):
                rt2.run("bad")
            assert rt2.stats.cache_hits == 1  # tlib came from the artifact


class TestWarmStart:
    def test_warm_start_skips_expansion_entirely(self, tmp_path):
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt:
            rt.run("client")
            assert rt.stats.expansion_steps > 0
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt2:
            assert rt2.run("client") == "(2 1 15)\n"
            assert rt2.stats.expansion_steps == 0

    def test_warm_start_is_5x_faster_on_large_module(self, tmp_path):
        """The ISSUE's acceptance benchmark: a 400-definition module must
        compile >= 5x faster from the cache than from source."""
        defs = "\n".join(
            f"(define (f{i} x) (+ x {i}))" for i in range(400)
        )
        source = f"#lang racket\n{defs}\n(displayln (f399 1))\n"

        import gc

        # collect before each timed region: a gen-2 collection of garbage
        # left by *earlier tests* landing inside the ~10ms warm window
        # would swamp the load itself
        with cached_runtime(tmp_path, big=source) as rt:
            gc.collect()
            t0 = time.perf_counter()
            rt.compile("big")
            cold = time.perf_counter() - t0
        with cached_runtime(tmp_path, big=source) as rt2:
            gc.collect()
            t0 = time.perf_counter()
            rt2.compile("big")
            warm = time.perf_counter() - t0
            assert rt2.stats.cache_hits == 1
        assert warm * 5 <= cold, f"warm {warm:.4f}s not 5x faster than cold {cold:.4f}s"


class TestInvalidation:
    def test_edited_source_misses(self, tmp_path):
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 1)\n") as rt:
            rt.run("m")
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 2)\n") as rt2:
            assert rt2.run("m") == "2\n"
            assert rt2.stats.cache_hits == 0
            assert rt2.stats.cache_misses == 1

    def test_edited_dependency_invalidates_requirer(self, tmp_path):
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt:
            assert rt.run("client") == "(2 1 15)\n"
        edited = RACKET_LIB.replace("(* 3 x)", "(* 30 x)")
        with cached_runtime(tmp_path, lib=edited, client=RACKET_CLIENT) as rt2:
            # client's own source is unchanged, but its artifact recorded
            # lib's full key — the changed lib forces a recompile
            assert rt2.run("client") == "(2 1 150)\n"
            assert rt2.stats.cache_invalidations == 1
            assert any(d.code == "C102" for d in rt2.cache.diagnostics)
        # and the recompiled artifact is immediately warm again
        with cached_runtime(tmp_path, lib=edited, client=RACKET_CLIENT) as rt3:
            assert rt3.run("client") == "(2 1 150)\n"
            assert rt3.stats.cache_hits == 2

    def test_unchanged_dependency_stays_warm(self, tmp_path):
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt:
            rt.run("client")
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=RACKET_CLIENT) as rt2:
            rt2.run("client")
            assert rt2.stats.cache_invalidations == 0
            assert rt2.stats.cache_misses == 0


class TestDegradation:
    def test_corrupt_artifact_recompiles_with_warning(self, tmp_path):
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 7)\n") as rt:
            rt.run("m")
            [(name, _size)] = rt.cache.entries()
        artifact = os.path.join(rt.cache.dir, name)
        with open(artifact, "wb") as f:
            f.write(b"not a pickle")
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 7)\n") as rt2:
            assert rt2.run("m") == "7\n"
            # corrupt artifacts are quarantined (C104), not just unlinked
            assert any(d.code == "C104" for d in rt2.cache.diagnostics)
            assert rt2.stats.cache_stores == 1  # replaced the corrupt file
            assert os.listdir(os.path.join(rt2.cache.dir, "quarantine"))
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 7)\n") as rt3:
            assert rt3.run("m") == "7\n"  # the replacement is valid again
            assert rt3.stats.cache_hits == 1

    def test_wrong_module_pickle_recompiles_with_warning(self, tmp_path):
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 7)\n") as rt:
            rt.run("m")
            [(name, _size)] = rt.cache.entries()
        artifact = os.path.join(rt.cache.dir, name)
        with open(artifact, "wb") as f:
            pickle.dump({"format": 999}, f)
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 7)\n") as rt2:
            assert rt2.run("m") == "7\n"
            assert any(d.code == "C104" for d in rt2.cache.diagnostics)

    def test_cache_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with Runtime() as rt:
            rt.register_module("m", "#lang racket\n(displayln 1)\n")
            rt.run("m")
            assert rt.cache is None
            assert rt.stats.cache_misses == 0
        assert not os.path.exists(tmp_path / ".repro-cache")

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        with Runtime() as rt:
            rt.register_module("m", "#lang racket\n(displayln 1)\n")
            rt.run("m")
            assert rt.cache is not None
            assert rt.stats.cache_stores == 1
        with Runtime(cache=False) as rt2:
            rt2.register_module("m", "#lang racket\n(displayln 1)\n")
            rt2.run("m")
            assert rt2.cache is None


class TestCacheManagement:
    def test_clear_and_entries(self, tmp_path):
        with cached_runtime(
            tmp_path,
            a="#lang racket\n(displayln 1)\n",
            b="#lang racket\n(displayln 2)\n",
        ) as rt:
            rt.run("a")
            rt.run("b")
            assert len(rt.cache.entries()) == 2
            report = rt.cache.clear()
            assert report["artifacts"] == 2
            assert rt.cache.entries() == []

    def test_clear_sweeps_quarantine_tmp_and_stale_locks(self, tmp_path):
        """``clear`` used to delete only ``*.zo``; quarantined artifacts,
        torn-write temp files, and stale locks accumulated forever. It must
        leave an empty directory tree and report what it removed."""
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 1)\n") as rt:
            rt.run("m")
            cache_dir = rt.cache.dir
            qdir = os.path.join(cache_dir, "quarantine")
            os.makedirs(qdir, exist_ok=True)
            with open(os.path.join(qdir, "bad.zo.corrupt"), "wb") as f:
                f.write(b"quarantined junk")
            with open(os.path.join(cache_dir, "x.zo.tmp.123"), "wb") as f:
                f.write(b"torn write")
            # a lock file no live process holds is stale by definition
            with open(os.path.join(cache_dir, "y.zo.lock"), "wb"):
                pass
            report = rt.cache.clear()
            assert report["artifacts"] == 1
            assert report["quarantined"] == 1
            assert report["tmp"] == 1
            assert report["locks"] == 1
            assert report["errors"] == []
            assert os.listdir(cache_dir) == []  # empty tree, debris included

    def test_cache_stats_helper(self, tmp_path):
        with cached_runtime(tmp_path, m="#lang racket\n(displayln 1)\n") as rt:
            rt.run("m")
            stats = rt.cache_stats()
            assert stats["cache_misses"] == 1
            assert stats["cache_stores"] == 1

    def test_cli_cache_subcommands(self, tmp_path, capsys, monkeypatch):
        from repro.tools.runner import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clicache"))
        program = tmp_path / "prog.rkt"
        program.write_text("#lang racket\n(displayln 9)\n")
        assert main([str(program)]) == 0
        out = capsys.readouterr()
        assert "9" in out.out or True  # stdout captured by the runtime port
        assert "misses=1" in out.err

        assert main(["cache", "stats"]) == 0
        assert "artifacts: 1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 artifact" in capsys.readouterr().out

    def test_cli_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        from repro.tools.runner import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clicache"))
        program = tmp_path / "prog.rkt"
        program.write_text("#lang racket\n(displayln 9)\n")
        assert main(["--no-cache", str(program)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "artifacts: 0" in capsys.readouterr().out


class TestTransactionality:
    def test_failed_compile_after_cache_load_rolls_back(self, tmp_path):
        """PR 1's transactional semantics must hold across cache loads: a
        failing requirer leaves no half-installed fragments behind."""
        with cached_runtime(tmp_path, lib=RACKET_LIB) as rt:
            rt.compile("lib")
        bad_client = '#lang racket\n(require "lib")\n(swap! only-one)\n'
        with cached_runtime(tmp_path, lib=RACKET_LIB, client=bad_client) as rt2:
            before = TABLE.entry_count()
            with pytest.raises(Exception):
                rt2.compile("client")
            assert TABLE.entry_count() == before
            # retry after fixing the source works in the same Runtime
            rt2.register_module("client", RACKET_CLIENT)
            assert rt2.run("client") == "(2 1 15)\n"
