"""Tests for the contract system (flat, higher-order, blame)."""

from __future__ import annotations

import pytest

from repro.contracts.contract import (
    ANY,
    FlatContract,
    FunctionContract,
    ListOfContract,
    OrContract,
    PairOfContract,
    VectorOfContract,
)
from repro.core.interp import apply_procedure
from repro.errors import ContractViolation
from repro.runtime.values import MVector, Pair, Primitive, from_list


def integer_contract() -> FlatContract:
    return FlatContract("exact-integer?", lambda x: isinstance(x, int) and not isinstance(x, bool))


def string_contract() -> FlatContract:
    return FlatContract("string?", lambda x: isinstance(x, str))


class TestFlat:
    def test_passing_value_returned(self):
        assert integer_contract().attach(5, "server", "client") == 5

    def test_failing_value_blames_positive(self):
        with pytest.raises(ContractViolation) as exc:
            integer_contract().attach("no", "server", "client")
        assert exc.value.blame == "server"

    def test_any_accepts_everything(self):
        assert ANY.attach(object(), "s", "c") is not None


class TestFunctionContracts:
    def make_wrapped(self, fn, domain, rng):
        prim = Primitive("fn", fn, len(domain), len(domain))
        return FunctionContract(domain, rng).attach(prim, "server", "client")

    def test_good_application(self):
        wrapped = self.make_wrapped(lambda x: x + 1, [integer_contract()], integer_contract())
        assert apply_procedure(wrapped, [4]) == 5

    def test_bad_argument_blames_client(self):
        wrapped = self.make_wrapped(lambda x: x, [integer_contract()], integer_contract())
        with pytest.raises(ContractViolation) as exc:
            apply_procedure(wrapped, ["bad"])
        assert exc.value.blame == "client"

    def test_bad_result_blames_server(self):
        wrapped = self.make_wrapped(lambda x: "oops", [integer_contract()], integer_contract())
        with pytest.raises(ContractViolation) as exc:
            apply_procedure(wrapped, [1])
        assert exc.value.blame == "server"

    def test_wrong_arity_blames_client(self):
        wrapped = self.make_wrapped(lambda x: x, [integer_contract()], integer_contract())
        with pytest.raises(ContractViolation) as exc:
            apply_procedure(wrapped, [1, 2])
        assert exc.value.blame == "client"

    def test_non_procedure_rejected(self):
        contract = FunctionContract([integer_contract()], integer_contract())
        with pytest.raises(ContractViolation):
            contract.attach(42, "server", "client")

    def test_higher_order_result_contract(self):
        # (-> Integer (-> Integer Integer)): returned function is wrapped too
        inner_contract = FunctionContract([integer_contract()], integer_contract())
        make_bad = Primitive("mk", lambda n: Primitive("f", lambda x: "bad", 1, 1), 1, 1)
        wrapped = FunctionContract([integer_contract()], inner_contract).attach(
            make_bad, "server", "client"
        )
        inner = apply_procedure(wrapped, [1])
        with pytest.raises(ContractViolation) as exc:
            apply_procedure(inner, [2])
        assert exc.value.blame == "server"

    def test_contract_checks_counted(self):
        from repro.runtime.stats import STATS

        wrapped = self.make_wrapped(lambda x: x, [integer_contract()], integer_contract())
        before = STATS.contract_checks
        apply_procedure(wrapped, [1])
        assert STATS.contract_checks > before


class TestContainerContracts:
    def test_listof_pass(self):
        c = ListOfContract(integer_contract())
        result = c.attach(from_list([1, 2, 3]), "s", "c")
        assert [x for x in result] == [1, 2, 3]

    def test_listof_element_failure(self):
        c = ListOfContract(integer_contract())
        with pytest.raises(ContractViolation):
            c.attach(from_list([1, "two"]), "s", "c")

    def test_listof_non_list(self):
        with pytest.raises(ContractViolation):
            ListOfContract(integer_contract()).attach(42, "s", "c")

    def test_listof_improper_list(self):
        with pytest.raises(ContractViolation):
            ListOfContract(integer_contract()).attach(Pair(1, 2), "s", "c")

    def test_pairof(self):
        c = PairOfContract(integer_contract(), string_contract())
        result = c.attach(Pair(1, "x"), "s", "c")
        assert result.car == 1 and result.cdr == "x"
        with pytest.raises(ContractViolation):
            c.attach(Pair("x", 1), "s", "c")

    def test_vectorof(self):
        c = VectorOfContract(integer_contract())
        vec = MVector([1, 2])
        assert c.attach(vec, "s", "c") is vec
        with pytest.raises(ContractViolation):
            c.attach(MVector([1, "x"]), "s", "c")

    def test_or_contract_first_order(self):
        c = OrContract([integer_contract(), string_contract()])
        assert c.attach(1, "s", "c") == 1
        assert c.attach("x", "s", "c") == "x"
        with pytest.raises(ContractViolation):
            c.attach(1.5, "s", "c")

    def test_or_contract_with_function_disjunct(self):
        fn_contract = FunctionContract([integer_contract()], integer_contract())
        c = OrContract([FlatContract("false?", lambda x: x is False), fn_contract])
        assert c.attach(False, "s", "c") is False
        prim = Primitive("f", lambda x: x, 1, 1)
        wrapped = c.attach(prim, "s", "c")
        assert apply_procedure(wrapped, [3]) == 3
