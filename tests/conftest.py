"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro import Runtime
from repro.runtime.stats import STATS

_COUNTER = itertools.count()


@pytest.fixture()
def rt() -> Runtime:
    """A fresh Runtime per test (languages, registry, namespaces)."""
    return Runtime()


@pytest.fixture()
def run(rt: Runtime):
    """Run ``#lang`` source and return its captured output."""

    def runner(source: str) -> str:
        return rt.run_source(source, path=f"<test-{next(_COUNTER)}>")

    return runner


@pytest.fixture(autouse=True)
def reset_stats():
    STATS.reset()
    yield
    STATS.reset()
