"""Tests for structs: the struct/define-struct macros and runtime."""

from __future__ import annotations

import pytest

from repro.errors import ArityError, SyntaxExpansionError, WrongTypeError


class TestBasicStructs:
    def test_constructor_and_accessors(self, run):
        assert run(
            """#lang racket
(struct point (x y))
(define p (point 3 4))
(displayln (list (point-x p) (point-y p)))"""
        ) == "(3 4)\n"

    def test_predicate(self, run):
        assert run(
            """#lang racket
(struct point (x y))
(struct color (r g b))
(define p (point 1 2))
(displayln (list (point? p) (color? p) (point? 42)))"""
        ) == "(#t #f #f)\n"

    def test_struct_question(self, run):
        assert run(
            """#lang racket
(struct point (x y))
(displayln (list (struct? (point 1 2)) (struct? 5)))"""
        ) == "(#t #f)\n"

    def test_define_struct_prefixes_constructor(self, run):
        assert run(
            """#lang racket
(define-struct posn (x y))
(define p (make-posn 1 2))
(displayln (posn-x p))"""
        ) == "1\n"

    def test_constructor_arity_checked(self, run):
        with pytest.raises(ArityError):
            run("#lang racket\n(struct point (x y))\n(point 1)")

    def test_accessor_rejects_wrong_struct(self, run):
        with pytest.raises(WrongTypeError):
            run(
                """#lang racket
(struct point (x y))
(struct other (a))
(point-x (other 1))"""
            )

    def test_no_fields(self, run):
        assert run(
            "#lang racket\n(struct unit ())\n(displayln (unit? (unit)))"
        ) == "#t\n"

    def test_bad_option_rejected(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(struct point (x) #:bogus)")


class TestMutableStructs:
    def test_setters(self, run):
        assert run(
            """#lang racket
(struct cell (value) #:mutable)
(define c (cell 1))
(set-cell-value! c 99)
(displayln (cell-value c))"""
        ) == "99\n"

    def test_immutable_structs_have_no_setters(self, run):
        from repro.errors import UnboundIdentifierError

        with pytest.raises(UnboundIdentifierError):
            run(
                """#lang racket
(struct point (x))
(set-point-x! (point 1) 2)"""
            )


class TestTransparency:
    def test_opaque_by_default(self, run):
        out = run("#lang racket\n(struct point (x y))\n(displayln (point 1 2))")
        assert out == "#<point>\n"

    def test_opaque_equal_is_identity(self, run):
        assert run(
            """#lang racket
(struct point (x y))
(displayln (equal? (point 1 2) (point 1 2)))"""
        ) == "#f\n"

    def test_transparent_printing(self, run):
        assert run(
            "#lang racket\n(struct point (x y) #:transparent)\n(displayln (point 1 2))"
        ) == "(point 1 2)\n"

    def test_transparent_equal_is_structural(self, run):
        assert run(
            """#lang racket
(struct point (x y) #:transparent)
(displayln (equal? (point 1 2) (point 1 2)))
(displayln (equal? (point 1 2) (point 1 3)))"""
        ) == "#t\n#f\n"


class TestStructsInPrograms:
    def test_struct_in_match(self, run):
        assert run(
            """#lang racket
(struct leaf (value))
(struct node (left right))
(define (tree-sum t)
  (match t
    [(struct leaf (v)) v]
    [(struct node (l r)) (+ (tree-sum l) (tree-sum r))]))
(displayln (tree-sum (node (leaf 1) (node (leaf 2) (leaf 3)))))"""
        ) == "6\n"

    def test_structs_across_modules(self, rt):
        rt.register_module(
            "shapes",
            """#lang racket
(struct circle (radius))
(define (area c) (* 3 (* (circle-radius c) (circle-radius c))))
(provide circle circle? circle-radius area)""",
        )
        rt.register_module(
            "app",
            """#lang racket
(require shapes)
(displayln (area (circle 2)))
(displayln (circle? (circle 1)))""",
        )
        assert rt.run("app") == "12\n#t\n"

    def test_struct_instances_in_lists(self, run):
        assert run(
            """#lang racket
(struct point (x y) #:transparent)
(define points (list (point 1 2) (point 3 4)))
(displayln (map point-x points))"""
        ) == "(1 3)\n"

    def test_hygiene_of_generated_names(self, run):
        # generated names live in the use site's context: two structs with
        # different names never collide, and user code can shadow accessors
        assert run(
            """#lang racket
(struct a (v))
(struct b (v))
(displayln (list (a-v (a 1)) (b-v (b 2))))"""
        ) == "(1 2)\n"
