"""Resource-governance tests (ISSUE 6): budgets, cancellation, recovery.

The acceptance property: an adversarial program (infinite loop, runaway
recursion, allocation bomb) under a budget terminates with a structured
``G``-coded error, and the platform's global state is left exactly as a
successful run would leave it — the Runtime, registry, and binding table
all stay usable.
"""

from __future__ import annotations

import gc
import threading
import time

import pytest

from repro import (
    Budget,
    BudgetExhausted,
    CancelToken,
    EvaluationCancelled,
    Runtime,
)
from repro.guard import resolve_budget
from repro.syn.binding import TABLE

LOOP = "#lang racket\n(define (loop) (loop))\n(loop)\n"

DEEP = """#lang racket
(define (count n) (if (= n 0) 0 (+ 1 (count (- n 1)))))
(displayln (count 200))
"""

TAIL_LOOP = """#lang racket
(define (iter n acc) (if (= n 0) acc (iter (- n 1) (+ acc 1))))
(displayln (iter 100000 0))
"""

ALLOC_BOMB = """#lang racket
(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
(displayln (length (build 500)))
"""


def calls_program(n: int) -> str:
    """A module that performs exactly ``n`` closure applications."""
    apps = "\n".join("(f 0)" for _ in range(n))
    return f"#lang racket\n(define (f x) x)\n{apps}\n"


class TestStepBudget:
    def test_infinite_loop_terminates_with_g001(self):
        with Runtime(budget={"steps": 50_000}) as rt:
            t0 = time.monotonic()
            with pytest.raises(BudgetExhausted) as excinfo:
                rt.run_source(LOOP)
            assert time.monotonic() - t0 < 30
        err = excinfo.value
        assert err.code == "G001"
        assert err.kind == "steps"
        assert err.steps_consumed > 50_000
        assert "50000 steps" in str(err)

    def test_step_accounting_is_exact(self):
        with Runtime(budget=True) as rt:  # no limits: just counts
            rt.run_source(calls_program(7))
            assert rt.stats.eval_steps == 7

    def test_limit_allows_exactly_that_many_steps(self):
        with Runtime(budget=5) as rt:  # int shorthand: steps=5
            assert rt.run_source(calls_program(5)) == ""
        with Runtime(budget=5) as rt2:
            with pytest.raises(BudgetExhausted) as excinfo:
                rt2.run_source(calls_program(6))
            assert excinfo.value.steps_consumed == 6

    def test_budget_spans_runs_until_reset(self):
        with Runtime(budget=10) as rt:
            rt.run_source(calls_program(8))
            with pytest.raises(BudgetExhausted):
                rt.run_source(calls_program(8))
            rt.budget.reset()
            assert rt.run_source(calls_program(8)) == ""


class TestDeadline:
    def test_wall_clock_deadline_g002(self):
        with Runtime(budget={"seconds": 0.2}) as rt:
            t0 = time.monotonic()
            with pytest.raises(BudgetExhausted) as excinfo:
                rt.run_source(LOOP)
            elapsed = time.monotonic() - t0
        assert excinfo.value.code == "G002"
        assert excinfo.value.kind == "deadline"
        assert elapsed < 10  # noticed within an amortized checkpoint or two

    def test_fast_program_fits_deadline(self):
        with Runtime(budget={"seconds": 30.0}) as rt:
            assert rt.run_source("#lang racket\n(displayln 1)\n") == "1\n"


class TestDepth:
    def test_runaway_recursion_g003(self):
        with Runtime(budget={"max_depth": 50}) as rt:
            with pytest.raises(BudgetExhausted) as excinfo:
                rt.run_source(DEEP)
        assert excinfo.value.code == "G003"
        assert excinfo.value.kind == "depth"

    def test_tail_calls_do_not_deepen(self):
        """100k trampolined tail iterations run fine under max_depth=50."""
        with Runtime(budget={"max_depth": 50}) as rt:
            assert rt.run_source(TAIL_LOOP) == "100000\n"


class TestAllocations:
    def test_allocation_bomb_g004(self):
        with Runtime(budget={"allocations": 100}) as rt:
            with pytest.raises(BudgetExhausted) as excinfo:
                rt.run_source(ALLOC_BOMB)
        assert excinfo.value.code == "G004"
        assert excinfo.value.kind == "allocations"

    def test_allocations_counted_in_stats(self):
        with Runtime(budget={"allocations": 10_000}) as rt:
            rt.run_source(ALLOC_BOMB)
            assert rt.stats.eval_allocations >= 500

    def test_untracked_by_default(self):
        with Runtime(budget=True) as rt:
            rt.run_source(ALLOC_BOMB)
            assert rt.stats.eval_allocations == 0  # no allocation limit set


class TestCancellation:
    def test_cross_thread_cancel_g005(self):
        with Runtime(budget=True) as rt:
            timer = threading.Timer(0.15, rt.cancel, args=("shutting down",))
            timer.start()
            try:
                t0 = time.monotonic()
                with pytest.raises(EvaluationCancelled) as excinfo:
                    rt.run_source(LOOP)
                elapsed = time.monotonic() - t0
            finally:
                timer.cancel()
        assert excinfo.value.code == "G005"
        assert "shutting down" in str(excinfo.value)
        assert elapsed < 10

    def test_token_is_reusable(self):
        token = CancelToken()
        with Runtime(budget={"cancel": token}) as rt:
            token.cancel("no")
            with pytest.raises(EvaluationCancelled):
                rt.run_source(calls_program(2000))
            token.reset()
            rt.budget.reset()
            assert rt.run_source("#lang racket\n(displayln 3)\n") == "3\n"

    def test_ungoverned_runtime_has_no_token(self):
        with Runtime() as rt:
            assert rt.budget is None
            assert rt.cancel_token is None
            with pytest.raises(ValueError):
                rt.cancel()


class TestStateIntegrity:
    """Satellite 3: a killed run leaves the platform exactly as it was."""

    def test_killed_run_leaves_binding_table_clean(self):
        gc.collect()
        before = TABLE.entry_count()
        rt = Runtime(budget={"steps": 2_000})
        rt.register_module("victim", LOOP)
        with pytest.raises(BudgetExhausted):
            rt.run("victim")
        rt.close()
        gc.collect()
        assert TABLE.entry_count() == before

    def test_runtime_usable_after_exhaustion(self):
        with Runtime(budget={"steps": 2_000}) as rt:
            rt.register_module("victim", LOOP)
            with pytest.raises(BudgetExhausted):
                rt.run("victim")
            rt.budget.reset()
            rt.register_module("ok", "#lang racket\n(displayln 9)\n")
            assert rt.run("ok") == "9\n"

    def test_exhausted_module_can_rerun_under_bigger_budget(self):
        source = calls_program(100)
        with Runtime(budget={"steps": 10}) as rt:
            rt.register_module("m", source)
            with pytest.raises(BudgetExhausted):
                rt.run("m")
            rt.budget.configure(steps=100_000)
            rt.budget.reset()
            assert rt.run("m") == ""

    def test_shared_budget_governs_jointly(self):
        budget = Budget()
        with Runtime(budget=budget) as rt1, Runtime(budget=budget) as rt2:
            rt1.run_source(calls_program(4))
            rt2.run_source(calls_program(3))
        assert budget.steps_used == 7


class TestObservability:
    def test_exhaustion_emits_guard_event(self):
        with Runtime(trace="full", budget={"steps": 2_000}, cache=False) as rt:
            with pytest.raises(BudgetExhausted):
                rt.run_source(LOOP)
            guard_events = [
                e for e in rt.tracer.events if e.category == "guard"
            ]
        assert any(e.name == "exhausted:steps" for e in guard_events)
        assert any(
            e.attrs.get("steps_used", 0) > 2_000 for e in guard_events
        )


class TestResolveBudget:
    def test_none_and_false_are_ungoverned(self):
        assert resolve_budget(None) is None
        assert resolve_budget(False) is None

    def test_true_counts_without_limits(self):
        budget = resolve_budget(True)
        assert isinstance(budget, Budget)
        assert budget.steps is None and budget.seconds is None

    def test_int_is_a_step_budget(self):
        assert resolve_budget(1234).steps == 1234

    def test_dict_is_keyword_arguments(self):
        budget = resolve_budget({"steps": 5, "max_depth": 3})
        assert (budget.steps, budget.max_depth) == (5, 3)

    def test_budget_passes_through(self):
        budget = Budget(steps=1)
        assert resolve_budget(budget) is budget

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_budget("lots")


class TestCLI:
    def test_steps_flag_reports_g001(self, tmp_path, capsys):
        from repro.tools.runner import main

        program = tmp_path / "loop.rkt"
        program.write_text(LOOP)
        assert main(["--no-cache", "--steps", "5000", str(program)]) == 1
        err = capsys.readouterr().err
        assert "G001" in err

    def test_time_limit_flag(self, tmp_path, capsys):
        from repro.tools.runner import main

        program = tmp_path / "loop.rkt"
        program.write_text(LOOP)
        assert main(["--no-cache", "--time-limit", "0.2", str(program)]) == 1
        assert "G002" in capsys.readouterr().err

    def test_governed_program_runs_normally(self, tmp_path, capsys):
        from repro.tools.runner import main

        program = tmp_path / "ok.rkt"
        program.write_text("#lang racket\n(displayln 11)\n")
        assert main(["--no-cache", "--steps", "100000", str(program)]) == 0


class TestRepl:
    def make_repl(self, *, for_run: bool = False):
        from repro.tools.repl import Repl

        repl = Repl()
        if not for_run:
            # run() prepends this helper itself; eval_input-level tests
            # need it installed by hand
            repl.forms.append(
                "(define (%repl-show v) (if (void? v) (void) (displayln v)))"
            )
        return repl

    def test_stats_reports_eval_steps(self):
        repl = self.make_repl()
        repl.eval_input("(define (f x) x)")
        repl.eval_input("(f 1)")
        out = repl.eval_input(",stats")
        assert "eval_steps" in out

    def test_budget_meta_command_round_trip(self):
        repl = self.make_repl()
        assert "steps: 50" in repl.eval_input(",budget steps 50")
        assert "steps" in repl.eval_input(",budget")
        assert "unlimited" in repl.eval_input(",budget steps off")

    def test_exhausted_input_does_not_poison_the_session(self):
        repl = self.make_repl()
        repl.eval_input("(define (loop) (loop))")
        repl.eval_input(",budget steps 5000")
        with pytest.raises(BudgetExhausted):
            repl.eval_input("(loop)")
        # the next input gets a fresh allowance and the session state
        # (definitions, accumulated module body) is intact
        assert repl.eval_input("(+ 1 2)") == "3\n"

    def test_loop_error_is_reported_not_fatal(self):
        """Driving the run() loop end to end: the G-code renders as an
        error line and the prompt comes back."""
        import io

        repl = self.make_repl(for_run=True)
        stdin = io.StringIO(
            ",budget steps 5000\n(define (loop) (loop))\n(loop)\n(+ 1 2)\n"
        )
        stdout = io.StringIO()
        assert repl.run(stdin=stdin, stdout=stdout) == 0
        out = stdout.getvalue()
        assert "G001" in out
        assert "3" in out

    def test_keyboard_interrupt_at_prompt_returns_to_prompt(self):
        class ScriptedStdin:
            def __init__(self, items):
                self.items = list(items)

            def readline(self):
                if not self.items:
                    return ""
                item = self.items.pop(0)
                if isinstance(item, BaseException):
                    raise item
                return item

        import io

        repl = self.make_repl(for_run=True)
        stdin = ScriptedStdin(["(define x 7)\n", KeyboardInterrupt(), "x\n"])
        stdout = io.StringIO()
        assert repl.run(stdin=stdin, stdout=stdout) == 0
        assert "7" in stdout.getvalue()

    def test_keyboard_interrupt_mid_eval_keeps_state(self, monkeypatch):
        import io

        repl = self.make_repl(for_run=True)
        original = repl.eval_input

        def interruptible(text):
            if "interrupt-me" in text:
                raise KeyboardInterrupt
            return original(text)

        monkeypatch.setattr(repl, "eval_input", interruptible)
        stdin = io.StringIO("(define x 5)\ninterrupt-me\nx\n")
        stdout = io.StringIO()
        assert repl.run(stdin=stdin, stdout=stdout) == 0
        out = stdout.getvalue()
        assert "interrupted (session state intact)" in out
        assert "5" in out
