"""Tests for the ``#lang`` import hook (:mod:`repro.importer`).

``import myapp.rules`` must resolve ``myapp/rules.rkt`` through the
registry, IR pipeline, and artifact cache: provides appear as module
attributes, compile errors raise ImportError chains that preserve stable
diagnostic codes, warm-cache re-imports perform zero expansions and zero
codegen, budgets bound hostile modules, and concurrent imports yield one
module instance.
"""

from __future__ import annotations

import importlib
import os
import subprocess
import sys
import threading

import pytest

from repro import Runtime
from repro.errors import CompilationFailed, UnboundIdentifierError
from repro.importer import (
    ReproImportError,
    install,
    installed,
    python_name,
    uninstall,
)

BACKENDS = ("interp", "pyc")

LIB_RKT = """#lang racket
(define answer 42)
(define (double x) (* 2 x))
(define (make-adder n) (lambda (x) (+ x n)))
(define shared-box (box 0))
(provide answer double make-adder shared-box)
"""

VIA_RKT = """#lang racket
(require "lib.rkt")
(define via-box shared-box)
(define (quadruple x) (double (double x)))
(provide via-box quadruple)
"""


@pytest.fixture()
def project(tmp_path, monkeypatch):
    """A package directory with #lang files, on sys.path, hook installed."""
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "lib.rkt").write_text(LIB_RKT)
    (pkg / "via.rkt").write_text(VIA_RKT)
    monkeypatch.syspath_prepend(str(tmp_path))
    yield pkg
    uninstall()
    for name in [m for m in sys.modules if m == "app" or m.startswith("app.")]:
        del sys.modules[name]


def hook(project, **kwargs):
    kwargs.setdefault("cache_dir", str(project.parent / "zo-cache"))
    return install(**kwargs)


class TestImportBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_provides_are_module_attributes(self, project, backend):
        finder = hook(project, backend=backend)
        lib = importlib.import_module("app.lib")
        assert lib.answer == 42
        assert lib.double(21) == 42
        assert lib.__language__ == "racket"
        assert lib.__provides__ == ["answer", "double", "make-adder",
                                    "shared-box"]
        assert lib.__file__.endswith("lib.rkt")
        assert finder.context.runtime.backend == backend

    def test_dashed_names_get_underscore_aliases(self, project):
        hook(project)
        lib = importlib.import_module("app.lib")
        assert getattr(lib, "make-adder") is lib.make_adder
        add5 = lib.make_adder(5)
        assert add5(3) == 8  # returned closures stay Python-callable

    def test_require_and_import_share_one_instance(self, project):
        hook(project)
        lib = importlib.import_module("app.lib")
        via = importlib.import_module("app.via")
        # the box reached through `require` is the box reached through
        # `import`: one module instance in one shared namespace
        assert via.via_box is lib.shared_box
        assert via.quadruple(3) == 12

    def test_python_module_wins_over_rkt(self, project):
        (project / "dual.py").write_text("WHO = 'python'\n")
        (project / "dual.rkt").write_text("#lang racket\n(define who 1)\n(provide who)\n")
        hook(project)
        dual = importlib.import_module("app.dual")
        assert dual.WHO == "python"

    def test_missing_module_still_not_found(self, project):
        hook(project)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("app.nothing")

    def test_unknown_attribute_message_lists_provides(self, project):
        hook(project)
        lib = importlib.import_module("app.lib")
        with pytest.raises(AttributeError, match="make-adder"):
            lib.no_such_export

    def test_activate_installs_default_hook(self, project, monkeypatch):
        uninstall()
        sys.modules.pop("repro.activate", None)
        monkeypatch.chdir(project.parent)  # default cache dir lands in tmp
        import repro.activate as activate

        assert activate.finder is installed()
        uninstall()
        sys.modules.pop("repro.activate", None)


class TestImportErrors:
    def test_compile_error_raises_importerror_chain(self, project):
        (project / "bad.rkt").write_text(
            "#lang racket\n(displayln undefined-name)\n"
        )
        hook(project)
        with pytest.raises(ReproImportError) as excinfo:
            importlib.import_module("app.bad")
        err = excinfo.value
        assert err.code == "E002"
        assert isinstance(err.__cause__, UnboundIdentifierError)
        assert err.__cause__.code == "E002"
        assert err.name == "app.bad"
        assert err.path.endswith("bad.rkt")
        assert err.diagnostics and err.diagnostics[0].code == "E002"

    def test_multi_error_compilation_preserves_codes(self, project):
        (project / "worse.rkt").write_text(
            "#lang racket\n(displayln one-missing)\n(displayln two-missing)\n"
        )
        hook(project)
        with pytest.raises(ReproImportError) as excinfo:
            importlib.import_module("app.worse")
        err = excinfo.value
        assert isinstance(err.__cause__, CompilationFailed)
        assert err.code == "E002"
        assert len([d for d in err.diagnostics if d.severity == "error"]) == 2
        assert err.srcloc is not None and err.srcloc.line == 2

    def test_type_error_code_survives(self, project):
        (project / "typed_bad.rkt").write_text(
            '#lang typed\n(: x Integer)\n(define x "not an integer")\n'
        )
        hook(project)
        with pytest.raises(ReproImportError) as excinfo:
            importlib.import_module("app.typed_bad")
        assert excinfo.value.code.startswith("T")

    def test_failed_import_can_be_retried_after_fix(self, project):
        bad = project / "fixme.rkt"
        bad.write_text("#lang racket\n(displayln missing)\n")
        hook(project)
        with pytest.raises(ImportError):
            importlib.import_module("app.fixme")
        bad.write_text("#lang racket\n(define ok 1)\n(provide ok)\n")
        fixed = importlib.import_module("app.fixme")
        assert fixed.ok == 1

    def test_macro_only_export_explains_itself(self, project):
        (project / "macros.rkt").write_text(
            "#lang racket\n"
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))\n"
            "(define plain 5)\n"
            "(provide twice plain)\n"
        )
        hook(project)
        mod = importlib.import_module("app.macros")
        assert mod.plain == 5
        with pytest.raises(AttributeError, match="macro"):
            mod.twice


class TestImportBudget:
    def test_hostile_module_dies_with_g_code(self, project):
        (project / "hang.rkt").write_text(
            "#lang racket\n(define (loop) (loop))\n(loop)\n"
        )
        hook(project, budget={"steps": 50_000})
        with pytest.raises(ReproImportError) as excinfo:
            importlib.import_module("app.hang")
        assert excinfo.value.code == "G001"

    def test_budget_is_fresh_per_import(self, project):
        # two imports that each fit the budget individually must both pass
        hook(project, budget={"steps": 50_000})
        lib = importlib.import_module("app.lib")
        via = importlib.import_module("app.via")
        assert lib.answer == 42 and via.quadruple(1) == 4


class TestWarmImports:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_reimport_zero_expansions_zero_codegen(
        self, project, backend
    ):
        cache_dir = str(project.parent / "zo-cache")
        with Runtime(cache_dir=cache_dir, backend=backend) as rt_cold:
            install(rt_cold)
            importlib.import_module("app.lib")
            assert rt_cold.stats.expansion_steps > 0
            assert rt_cold.stats.cache_stores >= 1
        uninstall()
        del sys.modules["app.lib"]
        # a fresh Runtime simulates a new process sharing the cache dir
        with Runtime(cache_dir=cache_dir, backend=backend) as rt_warm:
            install(rt_warm)
            lib = importlib.import_module("app.lib")
            assert lib.double(21) == 42
            assert rt_warm.stats.expansion_steps == 0
            assert rt_warm.stats.pyc_codegens == 0
            assert rt_warm.stats.cache_hits >= 1

    def test_edited_file_invalidates_warm_import(self, project):
        cache_dir = str(project.parent / "zo-cache")
        with Runtime(cache_dir=cache_dir) as rt1:
            install(rt1)
            assert importlib.import_module("app.lib").answer == 42
        uninstall()
        del sys.modules["app.lib"]
        (project / "lib.rkt").write_text(LIB_RKT.replace("42", "43"))
        with Runtime(cache_dir=cache_dir) as rt2:
            install(rt2)
            lib = importlib.import_module("app.lib")
            assert lib.answer == 43
            assert rt2.stats.expansion_steps > 0  # really recompiled


class TestImportObservability:
    def test_import_spans_on_the_bus(self, project):
        rt = Runtime(trace=True, cache_dir=str(project.parent / "zo-cache"))
        install(rt)
        importlib.import_module("app.lib")
        events = [e for e in rt.tracer.events if e.category == "import"]
        assert any(e.name == "app.lib" for e in events)
        assert any(e.name in ("cold", "warm") for e in events)
        rt.close()

    def test_bom_file_imports(self, project):
        # ties the reader BOM fix to the import path end to end
        (project / "bommed.rkt").write_text(
            "\ufeff#lang racket\n(define ok 7)\n(provide ok)\n"
        )
        hook(project)
        assert importlib.import_module("app.bommed").ok == 7


class TestImportConcurrency:
    def test_concurrent_imports_one_instance(self, project):
        hook(project)
        results: list = []
        errors: list = []
        barrier = threading.Barrier(8)

        def worker(name: str) -> None:
            try:
                barrier.wait(timeout=30)
                results.append(importlib.import_module(name))
            except BaseException as err:  # noqa: BLE001 - collected for assert
                errors.append(err)

        threads = [
            threading.Thread(target=worker,
                             args=("app.lib" if i % 2 else "app.via",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        libs = {id(m) for m in results if m.__name__ == "app.lib"}
        vias = {id(m) for m in results if m.__name__ == "app.via"}
        assert len(libs) == 1 and len(vias) == 1
        lib = sys.modules["app.lib"]
        via = sys.modules["app.via"]
        assert via.via_box is lib.shared_box

    def test_two_processes_share_one_cache_dir(self, project):
        """Two concurrent importing processes against one cache directory
        must both succeed (per-artifact locks serialize the writers)."""
        cache_dir = str(project.parent / "zo-cache")
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.importer import install\n"
            "install(cache_dir=sys.argv[2])\n"
            "import app.lib\n"
            "assert app.lib.double(21) == 42\n"
            "print('ok')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.pathsep.join(p for p in (
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH"),
            ) if p)
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(project.parent), cache_dir],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            )
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            assert out.decode().strip() == "ok"


class TestPythonNameMapping:
    def test_python_name_translation(self):
        assert python_name("make-adder") == "make_adder"
        assert python_name("null?") == "null_p"
        assert python_name("set-box!") == "set_box_bang"

    def test_uninstall_is_idempotent(self):
        uninstall()
        assert uninstall() is False
        assert installed() is None
