"""Tests for the reader: lexical syntax -> syntax objects."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ReaderError
from repro.reader import (
    read_module_source,
    read_string_all,
    read_string_one,
    split_lang_line,
)
from repro.runtime.values import Char, Keyword, Symbol
from repro.syn.syntax import (
    ImproperList,
    Syntax,
    VectorDatum,
    syntax_to_datum,
    write_datum,
)


def datum(text: str):
    return syntax_to_datum(read_string_one(text))


class TestAtoms:
    def test_integer(self):
        assert datum("42") == 42

    def test_negative_integer(self):
        assert datum("-17") == -17

    def test_explicit_positive(self):
        assert datum("+3") == 3

    def test_float(self):
        assert datum("3.25") == 3.25

    def test_float_without_leading_digit(self):
        assert datum(".5") == 0.5

    def test_float_exponent(self):
        assert datum("1e3") == 1000.0

    def test_negative_exponent(self):
        assert datum("2.5e-2") == 0.025

    def test_rational(self):
        assert datum("1/3") == Fraction(1, 3)

    def test_rational_normalizes_to_integer(self):
        value = datum("4/2")
        assert value == 2 and isinstance(value, int)

    def test_rational_zero_denominator_rejected(self):
        with pytest.raises(ReaderError):
            datum("1/0")

    def test_complex(self):
        assert datum("2.0+2.0i") == complex(2.0, 2.0)

    def test_complex_negative_imaginary(self):
        assert datum("1.5-0.5i") == complex(1.5, -0.5)

    def test_pure_imaginary(self):
        assert datum("+2.0i") == complex(0.0, 2.0)

    def test_inf(self):
        assert datum("+inf.0") == float("inf")
        assert datum("-inf.0") == float("-inf")

    def test_nan(self):
        value = datum("+nan.0")
        assert value != value

    def test_booleans(self):
        assert datum("#t") is True
        assert datum("#f") is False
        assert datum("#true") is True
        assert datum("#false") is False

    def test_symbol(self):
        assert datum("hello") is Symbol("hello")

    def test_symbol_with_special_characters(self):
        assert datum("list->vector") is Symbol("list->vector")
        assert datum("set!") is Symbol("set!")
        assert datum("<=") is Symbol("<=")

    def test_hash_percent_symbol(self):
        assert datum("#%plain-app") is Symbol("#%plain-app")

    def test_minus_is_a_symbol(self):
        assert datum("-") is Symbol("-")

    def test_keyword(self):
        assert datum("#:mode") is Keyword("mode")

    def test_string(self):
        assert datum('"hello world"') == "hello world"

    def test_string_escapes(self):
        assert datum(r'"a\nb\tc\"d\\e"') == 'a\nb\tc"d\\e'

    def test_string_hex_escape(self):
        assert datum(r'"\x41;"') == "A"

    def test_unterminated_string(self):
        with pytest.raises(ReaderError):
            datum('"oops')

    def test_char(self):
        assert datum(r"#\a") == Char("a")

    def test_named_chars(self):
        assert datum(r"#\space") == Char(" ")
        assert datum(r"#\newline") == Char("\n")
        assert datum(r"#\tab") == Char("\t")

    def test_char_unicode_escape(self):
        assert datum(r"#\u41") == Char("A")

    def test_unknown_char_name(self):
        with pytest.raises(ReaderError):
            datum(r"#\bogus")


class TestCompound:
    def test_empty_list(self):
        assert datum("()") == ()

    def test_proper_list(self):
        assert datum("(1 2 3)") == (1, 2, 3)

    def test_nested_list(self):
        assert datum("((1 2) (3))") == ((1, 2), (3,))

    def test_brackets(self):
        assert datum("[1 2]") == (1, 2)

    def test_mismatched_brackets(self):
        with pytest.raises(ReaderError):
            datum("(1 2]")

    def test_dotted_pair(self):
        d = datum("(1 . 2)")
        assert isinstance(d, ImproperList)
        assert syntax_to_datum(d.items[0]) == 1
        assert syntax_to_datum(d.tail) == 2

    def test_dotted_with_list_tail_collapses(self):
        assert datum("(1 . (2 3))") == (1, 2, 3)

    def test_dot_at_start_rejected(self):
        with pytest.raises(ReaderError):
            datum("(. 1)")

    def test_two_datums_after_dot_rejected(self):
        with pytest.raises(ReaderError):
            datum("(1 . 2 3)")

    def test_vector(self):
        d = datum("#(1 2 3)")
        assert isinstance(d, VectorDatum)
        assert [syntax_to_datum(x) for x in d.items] == [1, 2, 3]

    def test_unclosed_list(self):
        with pytest.raises(ReaderError):
            datum("(1 2")

    def test_stray_close(self):
        with pytest.raises(ReaderError):
            datum(")")


class TestQuoteForms:
    def test_quote(self):
        assert write_datum(datum("'x")) == "(quote x)"

    def test_quasiquote_unquote(self):
        assert write_datum(datum("`(1 ,x)")) == "(quasiquote (1 (unquote x)))"

    def test_unquote_splicing(self):
        assert write_datum(datum("`(,@xs)")) == "(quasiquote ((unquote-splicing xs)))"

    def test_syntax_quote(self):
        assert write_datum(datum("#'x")) == "(quote-syntax x)"

    def test_quasisyntax(self):
        assert write_datum(datum("#`(f #,x)")) == "(quasisyntax (f (unsyntax x)))"


class TestComments:
    def test_line_comment(self):
        assert datum("; hi\n42") == 42

    def test_block_comment(self):
        assert datum("#| hi |# 42") == 42

    def test_nested_block_comment(self):
        assert datum("#| a #| b |# c |# 42") == 42

    def test_unterminated_block_comment(self):
        with pytest.raises(ReaderError):
            datum("#| oops")

    def test_datum_comment(self):
        assert [syntax_to_datum(s) for s in read_string_all("#;(skip me) 42")] == [42]

    def test_datum_comment_inside_list(self):
        assert datum("(1 #;2 3)") == (1, 3)


class TestSrcloc:
    def test_line_and_column(self):
        forms = read_string_all("x\n  y", source="f.rkt")
        assert forms[0].srcloc.line == 1 and forms[0].srcloc.column == 0
        assert forms[1].srcloc.line == 2 and forms[1].srcloc.column == 2
        assert forms[0].srcloc.source == "f.rkt"

    def test_srcloc_of_nested(self):
        form = read_string_one("(a (b))")
        inner = form.e[1]
        assert inner.srcloc.column == 3


class TestLangLine:
    def test_split(self):
        lang, body = split_lang_line("#lang racket\n(+ 1 2)")
        assert lang == "racket"
        assert "(+ 1 2)" in body

    def test_lang_with_slash(self):
        lang, _ = split_lang_line("#lang typed/racket\nx")
        assert lang == "typed/racket"

    def test_comments_before_lang(self):
        lang, _ = split_lang_line("; header\n\n#lang racket\nx")
        assert lang == "racket"

    def test_bom_before_lang(self):
        # files saved by BOM-writing editors start with U+FEFF; the lang
        # line must still be recognized
        lang, body = split_lang_line("\ufeff#lang racket\n(+ 1 2)")
        assert lang == "racket"
        assert "(+ 1 2)" in body

    def test_bom_module_reads_end_to_end(self):
        lang, forms = read_module_source("\ufeff#lang racket\n(define x 1)")
        assert lang == "racket"
        assert len(forms) == 1

    def test_no_lang(self):
        lang, body = split_lang_line("(+ 1 2)")
        assert lang is None

    def test_trailing_line_comment(self):
        # `#lang typed ; my notes` — the comment is not part of the name
        lang, body = split_lang_line("#lang typed ; my notes\n(+ 1 2)")
        assert lang == "typed"
        assert "(+ 1 2)" in body

    def test_trailing_comment_without_space(self):
        lang, _ = split_lang_line("#lang racket;inline note\nx")
        assert lang == "racket"

    def test_crlf_line_ending(self):
        # CRLF files split on "\n" leave the "\r" behind on the lang line
        lang, body = split_lang_line("#lang racket\r\n(+ 1 2)\r\n")
        assert lang == "racket"
        assert "(+ 1 2)" in body

    def test_trailing_spaces(self):
        lang, _ = split_lang_line("#lang racket   \t\nx")
        assert lang == "racket"

    def test_comment_and_crlf_combined(self):
        lang, _ = split_lang_line("#lang racket ; note\r\nx")
        assert lang == "racket"

    def test_garbage_after_name_still_rejected(self):
        lang, _ = split_lang_line("#lang racket extra-token\nx")
        assert lang is None

    def test_read_module_source(self):
        lang, forms = read_module_source("#lang racket\n(+ 1 2)\n(* 3 4)")
        assert lang == "racket"
        assert len(forms) == 2

    def test_missing_lang_raises(self):
        with pytest.raises(ReaderError):
            read_module_source("(+ 1 2)")

    def test_body_line_numbers_preserved(self):
        _lang, forms = read_module_source("#lang racket\n\n(+ 1 2)")
        assert forms[0].srcloc.line == 3


class TestMultipleDatums:
    def test_read_all(self):
        assert [syntax_to_datum(s) for s in read_string_all("1 2 3")] == [1, 2, 3]

    def test_read_one_rejects_extra(self):
        with pytest.raises(ReaderError):
            read_string_one("1 2")
