"""Tests for syntax objects: scopes, properties, conversions, bindings."""

from __future__ import annotations

import pytest

from repro.errors import AmbiguousBindingError
from repro.reader import read_string_one
from repro.runtime.values import NULL, Pair, Symbol
from repro.syn.binding import (
    BindingTable,
    LocalBinding,
    ModuleBinding,
    bound_identifier_eq,
)
from repro.syn.scopes import Scope
from repro.syn.syntax import (
    Syntax,
    datum_to_syntax,
    datum_to_value,
    syntax_to_datum,
    syntax_to_list,
)


def ident(name: str, *scopes: Scope) -> Syntax:
    return Syntax(Symbol(name), frozenset(scopes))


class TestScopeOperations:
    def test_add_scope_recursive(self):
        sc = Scope()
        stx = read_string_one("(a (b c))").add_scope(sc)
        assert sc in stx.scopes
        assert sc in stx.e[1].e[0].scopes

    def test_flip_is_involution(self):
        sc = Scope()
        stx = read_string_one("(a b)")
        flipped_twice = stx.flip_scope(sc).flip_scope(sc)
        assert flipped_twice.scopes == stx.scopes
        assert flipped_twice.e[0].scopes == stx.e[0].scopes

    def test_flip_adds_when_absent(self):
        sc = Scope()
        assert sc in ident("x").flip_scope(sc).scopes

    def test_flip_removes_when_present(self):
        sc = Scope()
        assert sc not in ident("x", sc).flip_scope(sc).scopes

    def test_remove_scope(self):
        sc = Scope()
        assert sc not in ident("x", sc).remove_scope(sc).scopes

    def test_scope_ops_preserve_properties(self):
        sc = Scope()
        stx = ident("x").property_put("key", "value")
        assert stx.add_scope(sc).property_get("key") == "value"
        assert stx.flip_scope(sc).property_get("key") == "value"


class TestProperties:
    def test_put_get(self):
        stx = ident("x").property_put("type-annotation", "Integer")
        assert stx.property_get("type-annotation") == "Integer"

    def test_get_missing_returns_default(self):
        assert ident("x").property_get("absent") is None
        assert ident("x").property_get("absent", 42) == 42

    def test_put_is_functional(self):
        original = ident("x")
        original.property_put("k", 1)
        assert original.property_get("k") is None

    def test_independent_keys(self):
        stx = ident("x").property_put("a", 1).property_put("b", 2)
        assert stx.property_get("a") == 1 and stx.property_get("b") == 2


class TestConversions:
    def test_datum_to_syntax_uses_context_scopes(self):
        sc = Scope()
        ctx = ident("ctx", sc)
        stx = datum_to_syntax(ctx, (Symbol("f"), 1))
        assert sc in stx.scopes and sc in stx.e[0].scopes

    def test_datum_to_syntax_preserves_existing_syntax(self):
        sc = Scope()
        inner = ident("inner")  # no scopes
        stx = datum_to_syntax(ident("ctx", sc), [Symbol("f"), inner])
        assert stx.e[1] is inner

    def test_syntax_to_list(self):
        stx = read_string_one("(a b c)")
        items = syntax_to_list(stx)
        assert [i.e for i in items] == [Symbol("a"), Symbol("b"), Symbol("c")]

    def test_syntax_to_list_on_atom_is_none(self):
        assert syntax_to_list(ident("x")) is None

    def test_datum_to_value_builds_pairs(self):
        value = datum_to_value(syntax_to_datum(read_string_one("(1 2)")))
        assert isinstance(value, Pair)
        assert value.car == 1 and value.cdr.car == 2 and value.cdr.cdr is NULL

    def test_datum_to_value_improper(self):
        value = datum_to_value(syntax_to_datum(read_string_one("(1 . 2)")))
        assert value.car == 1 and value.cdr == 2


class TestBindingResolution:
    def test_resolve_simple(self):
        table = BindingTable()
        sc = Scope()
        binding = LocalBinding(Symbol("x"))
        table.add(Symbol("x"), frozenset({sc}), binding)
        assert table.resolve(ident("x", sc)) is binding

    def test_unbound_returns_none(self):
        table = BindingTable()
        assert table.resolve(ident("nope")) is None

    def test_subset_rule(self):
        table = BindingTable()
        outer, inner = Scope(), Scope()
        b_outer = LocalBinding(Symbol("x"))
        table.add(Symbol("x"), frozenset({outer}), b_outer)
        # reference with extra scopes still sees outer binding
        assert table.resolve(ident("x", outer, inner)) is b_outer

    def test_shadowing_prefers_larger_scope_set(self):
        table = BindingTable()
        outer, inner = Scope(), Scope()
        b_outer = LocalBinding(Symbol("x"))
        b_inner = LocalBinding(Symbol("x"))
        table.add(Symbol("x"), frozenset({outer}), b_outer)
        table.add(Symbol("x"), frozenset({outer, inner}), b_inner)
        assert table.resolve(ident("x", outer, inner)) is b_inner
        assert table.resolve(ident("x", outer)) is b_outer

    def test_binding_with_more_scopes_invisible(self):
        table = BindingTable()
        sc = Scope()
        table.add(Symbol("x"), frozenset({sc}), LocalBinding(Symbol("x")))
        assert table.resolve(ident("x")) is None

    def test_ambiguity_detected(self):
        table = BindingTable()
        a, b = Scope(), Scope()
        table.add(Symbol("x"), frozenset({a}), LocalBinding(Symbol("x")))
        table.add(Symbol("x"), frozenset({b}), LocalBinding(Symbol("x")))
        with pytest.raises(AmbiguousBindingError):
            table.resolve(ident("x", a, b))

    def test_same_binding_not_ambiguous(self):
        table = BindingTable()
        a, b = Scope(), Scope()
        binding = ModuleBinding("m", Symbol("x"))
        table.add(Symbol("x"), frozenset({a}), binding)
        table.add(Symbol("x"), frozenset({b}), ModuleBinding("m", Symbol("x")))
        assert table.resolve(ident("x", a, b)) == binding

    def test_module_binding_key_stability(self):
        assert ModuleBinding("m", Symbol("x")).key() == ModuleBinding(
            "m", Symbol("x")
        ).key()
        assert ModuleBinding("m", Symbol("x")).key() != ModuleBinding(
            "n", Symbol("x")
        ).key()


class TestBoundIdentifierEq:
    def test_same_symbol_same_scopes(self):
        sc = Scope()
        assert bound_identifier_eq(ident("x", sc), ident("x", sc))

    def test_different_scopes(self):
        assert not bound_identifier_eq(ident("x", Scope()), ident("x", Scope()))

    def test_different_symbols(self):
        sc = Scope()
        assert not bound_identifier_eq(ident("x", sc), ident("y", sc))
